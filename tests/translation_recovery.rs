//! The crash matrix: batched data translation killed at *every* batch
//! boundary, resumed from its checkpoint, must be byte-identical to the
//! uncrashed one-shot run — output database (by fingerprint and derived
//! access structures) *and* translation-work statistics alike — for a
//! spread of transform shapes and at 1, 2, and 8 worker threads.
//!
//! This is the data-translator face of the paper's bridge-program
//! discussion: a long-running translation that dies mid-way must be
//! restartable without re-doing (or double-doing) work, and without the
//! crashed-and-resumed artifact being distinguishable from a clean one.

use dbpc::corpus::{named, pool};
use dbpc::datamodel::value::Value;
use dbpc::dml::expr::CmpOp;
use dbpc::restructure::{
    resume_translation, stats, translate_batched, BatchedOutcome, Restructuring, Transform,
};
use dbpc::storage::NetworkDb;

/// Small enough to put several boundaries inside every phase of the small
/// test database, so crashes land mid-copy, mid-promote, and mid-erase.
const BATCH: usize = 3;

/// The transform spread: the paper's own Figure 4.2 → 4.4 promotion, its
/// inverse demotion, a plain field rename, and an information-losing
/// delete-where (whose translation erases in place on a cloned database —
/// the one phase plan that starts from a copy instead of empty).
fn cases() -> Vec<(&'static str, NetworkDb, Transform)> {
    let source = named::company_db(4, 3, 8);
    let promote = named::fig_4_4_restructuring();
    let promoted = promote.translate(&source).unwrap();
    let demote = promote.inverse().unwrap().transforms[0].clone();
    vec![
        ("promote", source.clone(), promote.transforms[0].clone()),
        ("demote", promoted, demote),
        (
            "rename",
            source.clone(),
            Transform::RenameField {
                record: "EMP".into(),
                old: "AGE".into(),
                new: "YEARS".into(),
            },
        ),
        (
            "delete-where",
            source,
            Transform::DeleteWhere {
                record: "EMP".into(),
                field: "AGE".into(),
                op: CmpOp::Gt,
                value: Value::Int(40),
            },
        ),
    ]
}

/// One uncrashed batched run: the reference output fingerprint, the
/// reference per-run stats delta, and the number of batch boundaries the
/// run consults (= the crash points to cover).
fn one_shot(db: &NetworkDb, t: &Transform) -> (u64, stats::TranslationProfile, usize) {
    let mut boundaries = 0;
    let before = stats::snapshot();
    let out = match translate_batched(db, t, BATCH, &mut |_| {
        boundaries += 1;
        false
    })
    .unwrap()
    {
        BatchedOutcome::Complete(out) => out,
        BatchedOutcome::Crashed(_) => unreachable!("never-crash plan crashed"),
    };
    out.check_access_structures().unwrap();
    (
        out.fingerprint(),
        stats::snapshot().since(&before),
        boundaries,
    )
}

/// Crash at boundary `point`, resume from the checkpoint, and return the
/// resumed output's fingerprint plus the whole crashed+resumed stats delta.
fn crash_and_resume(
    db: &NetworkDb,
    t: &Transform,
    point: usize,
) -> (u64, stats::TranslationProfile) {
    let before = stats::snapshot();
    let ckpt = match translate_batched(db, t, BATCH, &mut |b| b == point).unwrap() {
        BatchedOutcome::Crashed(ckpt) => ckpt,
        BatchedOutcome::Complete(_) => panic!("crash at boundary {point} did not fire"),
    };
    // Boundary `point` fires after its batch completed, so the checkpoint
    // has `point + 1` finished batches behind it.
    assert_eq!(
        ckpt.batches_done(),
        point + 1,
        "checkpoint taken at the crash"
    );
    let out = resume_translation(db, t, ckpt).unwrap();
    out.check_access_structures().unwrap();
    (out.fingerprint(), stats::snapshot().since(&before))
}

#[test]
fn resume_is_byte_identical_at_every_crash_point() {
    for (name, db, t) in cases() {
        let (want_fp, want_stats, boundaries) = one_shot(&db, &t);
        assert!(
            boundaries >= 4,
            "{name}: only {boundaries} boundaries — batch too coarse for a \
             meaningful crash matrix"
        );
        for point in 0..boundaries {
            let (fp, profile) = crash_and_resume(&db, &t, point);
            assert_eq!(fp, want_fp, "{name}: output differs after crash at {point}");
            assert_eq!(
                profile, want_stats,
                "{name}: translation work differs after crash at {point} — \
                 the resume re-did or skipped work"
            );
        }
    }
}

/// The same matrix fanned out over worker threads: every `(case, crash
/// point)` cell yields the same fingerprint and stats delta at 1, 2, and
/// 8 threads (the stats counters are thread-local, so a worker's delta
/// must be exactly its own run's work).
#[test]
fn crash_matrix_is_thread_count_invariant() {
    // NetworkDb keeps interior index caches (not Sync), so workers rebuild
    // their case from its index; the work units themselves carry only
    // plain data.
    let mut units = Vec::new();
    for (idx, (_, db, t)) in cases().into_iter().enumerate() {
        let (want_fp, want_stats, boundaries) = one_shot(&db, &t);
        for point in 0..boundaries {
            units.push((idx, point, want_fp, want_stats));
        }
    }
    let run_unit =
        |&(idx, point, want_fp, want_stats): &(usize, usize, u64, stats::TranslationProfile)| {
            let (name, db, t) = cases().into_iter().nth(idx).unwrap();
            let (fp, profile) = crash_and_resume(&db, &t, point);
            assert_eq!(fp, want_fp, "{name} point {point}: output drifted");
            assert_eq!(profile, want_stats, "{name} point {point}: stats drifted");
            (fp, profile)
        };
    let reference: Vec<(u64, stats::TranslationProfile)> = units.iter().map(run_unit).collect();
    for threads in [1, 2, 8] {
        let got = pool::parallel_map(&units, threads, |_, unit| run_unit(unit));
        assert_eq!(got, reference, "matrix changed at {threads} threads");
    }
}

/// A stale checkpoint must be refused, not silently replayed: resuming
/// against a database whose content changed since the checkpoint was
/// taken is a constraint error.
#[test]
fn resume_refuses_a_drifted_source() {
    let (_, db, t) = cases().remove(0);
    let ckpt = match translate_batched(&db, &t, BATCH, &mut |b| b == 1).unwrap() {
        BatchedOutcome::Crashed(ckpt) => ckpt,
        BatchedOutcome::Complete(_) => panic!("crash did not fire"),
    };
    let mut drifted = db.clone();
    let doomed = drifted.records_of_type("EMP")[0];
    drifted.erase(doomed, false).unwrap();
    let err = resume_translation(&drifted, &t, ckpt).unwrap_err();
    assert!(
        err.to_string().contains("checkpoint"),
        "unexpected error: {err}"
    );
}

/// The sequencing layer recovers in line: a `Restructuring` run through
/// `translate_checkpointed` with injected crashes produces the same
/// database as the plain `translate` path.
#[test]
fn checkpointed_sequence_matches_plain_translation() {
    let db = named::company_db(4, 3, 8);
    let r = named::fig_4_4_restructuring();
    let plain = r.translate(&db).unwrap();
    let mut crashes = vec![0usize, 3, 7];
    let recovered = r
        .translate_checkpointed(&db, BATCH, &mut |b| crashes.contains(&b))
        .unwrap();
    assert_eq!(recovered.fingerprint(), plain.fingerprint());
    recovered.check_access_structures().unwrap();
    crashes.clear();
    let uncrashed = r
        .translate_checkpointed(&db, BATCH, &mut |_| false)
        .unwrap();
    assert_eq!(uncrashed.fingerprint(), plain.fingerprint());
}

/// `Restructuring::single` + `inverse` round-trip under crashes: promote
/// crashed-and-resumed, then demote crashed-and-resumed, lands back on a
/// database trace-equal to the source (modulo the internal id allocator,
/// so compare resolved content rather than raw fingerprints).
#[test]
fn crashed_round_trip_preserves_content() {
    let db = named::company_db(3, 2, 6);
    let promote = named::fig_4_4_restructuring();
    let inverse = promote.inverse().unwrap();
    let there = promote
        .translate_checkpointed(&db, BATCH, &mut |b| b == 2)
        .unwrap();
    let back = inverse
        .translate_checkpointed(&there, BATCH, &mut |b| b == 1)
        .unwrap();
    let clean_back = inverse.translate(&promote.translate(&db).unwrap()).unwrap();
    assert_eq!(back.fingerprint(), clean_back.fingerprint());
    back.check_access_structures().unwrap();
}

/// One crash point inside the `Restructuring` fan must not fire twice
/// when the sequence holds several transforms: boundary indices are
/// per-transform, so the crash plan sees each transform's boundary 0.
#[test]
fn multi_transform_sequences_resume_per_transform() {
    let db = named::company_db(3, 2, 6);
    let r = Restructuring::new(vec![
        Transform::RenameField {
            record: "EMP".into(),
            old: "AGE".into(),
            new: "YEARS".into(),
        },
        Transform::RenameRecord {
            old: "DIV".into(),
            new: "BRANCH".into(),
        },
    ]);
    let plain = r.translate(&db).unwrap();
    let mut fired = 0;
    let recovered = r
        .translate_checkpointed(&db, BATCH, &mut |b| {
            if b == 0 {
                fired += 1;
                true
            } else {
                false
            }
        })
        .unwrap();
    assert_eq!(fired, 2, "each transform consults its own boundary 0");
    assert_eq!(recovered.fingerprint(), plain.fingerprint());
}
