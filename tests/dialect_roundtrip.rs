//! Print ∘ parse identity for the DBTG, DL/I, and SEQUEL dialects over
//! randomly generated ASTs (the host dialect's round trip is covered in
//! `pipeline.rs`). Programs-as-data is the framework's foundation; these
//! properties pin it for every dialect the Program Generator can emit.

use dbpc::datamodel::value::Value;
use dbpc::dml::dbtg::{parse_dbtg, print_dbtg, DbtgProgram, DbtgStmt, DbtgUnit, StatusCond};
use dbpc::dml::dli::{
    parse_dli, print_dli, DliProgram, DliStatus, DliStmt, DliUnit, PrintItem, Ssa,
};
use dbpc::dml::expr::{CmpOp, Expr};
use dbpc::dml::sequel::{
    parse_sequel_program, print_sequel_program, SelectQuery, SequelPred, SequelProgram, SequelStmt,
};
use proptest::prelude::*;

// -- shared atoms -----------------------------------------------------------

fn ident() -> impl Strategy<Value = String> {
    "[A-Z][A-Z0-9]{0,6}(-[A-Z0-9]{1,4}){0,2}"
}

fn label() -> impl Strategy<Value = String> {
    // Labels must not collide with statement keywords.
    "L[0-9]{1,3}"
}

fn literal() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<i16>().prop_map(|n| Value::Int(n as i64)),
        "[A-Z0-9 ]{0,8}".prop_map(Value::Str),
    ]
}

fn cmp_op() -> impl Strategy<Value = CmpOp> {
    prop::sample::select(vec![
        CmpOp::Eq,
        CmpOp::Ne,
        CmpOp::Lt,
        CmpOp::Le,
        CmpOp::Gt,
        CmpOp::Ge,
    ])
}

// -- DBTG -------------------------------------------------------------------

fn dbtg_stmt() -> impl Strategy<Value = DbtgStmt> {
    prop_oneof![
        (literal(), ident(), ident()).prop_map(|(v, field, record)| DbtgStmt::Move {
            value: Expr::Lit(v),
            field,
            record
        }),
        (ident(), prop::collection::vec(ident(), 0..3))
            .prop_map(|(record, using)| DbtgStmt::FindAny { record, using }),
        (ident(), ident()).prop_map(|(record, set)| DbtgStmt::FindFirst { record, set }),
        (ident(), ident(), prop::collection::vec(ident(), 0..2))
            .prop_map(|(record, set, using)| DbtgStmt::FindNext { record, set, using }),
        ident().prop_map(|set| DbtgStmt::FindOwner { set }),
        ident().prop_map(|record| DbtgStmt::Get { record }),
        (
            prop::sample::select(vec![
                StatusCond::Ok,
                StatusCond::NotFound,
                StatusCond::EndSet,
                StatusCond::Integrity,
                StatusCond::Duplicate,
                StatusCond::NoCurrency,
            ]),
            label()
        )
            .prop_map(|(cond, goto)| DbtgStmt::IfStatus { cond, goto }),
        label().prop_map(DbtgStmt::Goto),
        prop::collection::vec(
            prop_oneof![
                literal().prop_map(Expr::Lit),
                (ident(), ident()).prop_map(|(var, field)| Expr::Field { var, field }),
            ],
            1..3
        )
        .prop_map(DbtgStmt::Print),
        (ident(), ident()).prop_map(|(field, record)| DbtgStmt::Accept { field, record }),
        ident().prop_map(|record| DbtgStmt::Store { record }),
        ident().prop_map(|record| DbtgStmt::Modify { record }),
        (ident(), any::<bool>()).prop_map(|(record, all)| DbtgStmt::Erase { record, all }),
        (ident(), ident()).prop_map(|(record, set)| DbtgStmt::Connect { record, set }),
        (ident(), ident()).prop_map(|(record, set)| DbtgStmt::Disconnect { record, set }),
        Just(DbtgStmt::Stop),
    ]
}

fn dbtg_program() -> impl Strategy<Value = DbtgProgram> {
    prop::collection::vec(
        prop_oneof![
            3 => dbtg_stmt().prop_map(DbtgUnit::Stmt),
            1 => label().prop_map(DbtgUnit::Label),
        ],
        0..12,
    )
    .prop_map(|units| DbtgProgram {
        name: "GEN".into(),
        units,
    })
}

// -- DL/I -------------------------------------------------------------------

fn ssa() -> impl Strategy<Value = Ssa> {
    (ident(), prop::option::of((ident(), cmp_op(), literal())))
        .prop_map(|(segment, qual)| Ssa { segment, qual })
}

fn dli_assigns() -> impl Strategy<Value = Vec<(String, Value)>> {
    prop::collection::vec((ident(), literal()), 1..3)
}

fn dli_stmt() -> impl Strategy<Value = DliStmt> {
    prop_oneof![
        prop::collection::vec(ssa(), 1..3).prop_map(|ssas| DliStmt::Gu { ssas }),
        prop::option::of(ident()).prop_map(|segment| DliStmt::Gn { segment }),
        prop::option::of(ident()).prop_map(|segment| DliStmt::Gnp { segment }),
        (ident(), dli_assigns()).prop_map(|(segment, assigns)| DliStmt::Isrt { segment, assigns }),
        Just(DliStmt::Dlet),
        dli_assigns().prop_map(|assigns| DliStmt::Repl { assigns }),
        prop::collection::vec(
            prop_oneof![
                ident().prop_map(PrintItem::Field),
                literal().prop_map(PrintItem::Lit),
            ],
            1..3
        )
        .prop_map(|items| DliStmt::Print { items }),
        (
            prop::sample::select(vec![DliStatus::Ok, DliStatus::NotFound, DliStatus::EndOfDb]),
            label()
        )
            .prop_map(|(cond, goto)| DliStmt::IfStatus { cond, goto }),
        label().prop_map(DliStmt::Goto),
        Just(DliStmt::Stop),
    ]
}

fn dli_program() -> impl Strategy<Value = DliProgram> {
    prop::collection::vec(
        prop_oneof![
            3 => dli_stmt().prop_map(DliUnit::Stmt),
            1 => label().prop_map(DliUnit::Label),
        ],
        0..12,
    )
    .prop_map(|units| DliProgram {
        name: "GEN".into(),
        units,
    })
}

// -- SEQUEL -----------------------------------------------------------------

fn select_query(depth: u32) -> BoxedStrategy<SelectQuery> {
    let pred = sequel_pred(depth);
    (
        prop::collection::vec(ident(), 0..3),
        ident(),
        prop::option::of(pred),
        prop::collection::vec(ident(), 0..2),
    )
        .prop_map(|(columns, table, where_, order_by)| SelectQuery {
            columns,
            table,
            where_,
            order_by,
        })
        .boxed()
}

fn sequel_pred(depth: u32) -> BoxedStrategy<SequelPred> {
    let leaf = (ident(), cmp_op(), literal())
        .prop_map(|(c, op, v)| SequelPred::Cmp {
            column: c,
            op,
            value: v,
        })
        .boxed();
    if depth == 0 {
        return leaf;
    }
    let sub = select_query(depth - 1);
    prop_oneof![
        3 => leaf,
        1 => (ident(), sub).prop_map(|(column, sub)| SequelPred::In {
            column,
            sub: Box::new(sub)
        }),
        1 => (sequel_pred(depth - 1), sequel_pred(depth - 1))
            .prop_map(|(a, b)| SequelPred::And(Box::new(a), Box::new(b))),
    ]
    .boxed()
}

fn sequel_program() -> impl Strategy<Value = SequelProgram> {
    let stmt = prop_oneof![
        select_query(1).prop_map(SequelStmt::Select),
        (ident(), prop::collection::vec((ident(), literal()), 1..3))
            .prop_map(|(table, assigns)| SequelStmt::Insert { table, assigns }),
        (ident(), prop::option::of(sequel_pred(0)))
            .prop_map(|(table, where_)| SequelStmt::Delete { table, where_ }),
        (
            ident(),
            prop::collection::vec((ident(), literal()), 1..2),
            prop::option::of(sequel_pred(0))
        )
            .prop_map(|(table, assigns, where_)| SequelStmt::Update {
                table,
                assigns,
                where_
            }),
    ];
    prop::collection::vec(stmt, 0..5).prop_map(|stmts| SequelProgram {
        name: "GEN".into(),
        stmts,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn dbtg_round_trips(p in dbtg_program()) {
        let text = print_dbtg(&p);
        let again = parse_dbtg(&text)
            .unwrap_or_else(|e| panic!("{e}\n--\n{text}"));
        prop_assert_eq!(p, again);
    }

    #[test]
    fn dli_round_trips(p in dli_program()) {
        let text = print_dli(&p);
        let again = parse_dli(&text)
            .unwrap_or_else(|e| panic!("{e}\n--\n{text}"));
        prop_assert_eq!(p, again);
    }

    #[test]
    fn sequel_round_trips(p in sequel_program()) {
        let text = print_sequel_program(&p);
        let again = parse_sequel_program(&text)
            .unwrap_or_else(|e| panic!("{e}\n--\n{text}"));
        prop_assert_eq!(p, again);
    }
}
