//! Property tests on the owner-coupled-set engine's invariants under
//! arbitrary operation sequences. Trace-equality conversion checking is
//! only as trustworthy as the substrate, so the substrate gets its own
//! adversarial workout.

use dbpc::corpus::named;
use dbpc::datamodel::hierarchical::{HierSchema, SegmentDef};
use dbpc::datamodel::network::{FieldDef, SetOwner};
use dbpc::datamodel::relational::{ColumnDef, RelationalSchema, TableDef};
use dbpc::datamodel::types::FieldType;
use dbpc::datamodel::value::{cmp_tuple, Value};
use dbpc::storage::{HierDb, NetworkDb, RecordId, RelationalDb, SYSTEM_OWNER};
use proptest::prelude::*;

/// One random mutation.
#[derive(Debug, Clone)]
enum Op {
    StoreEmp {
        name_seed: u16,
        dept: u8,
        age: u8,
        div_pick: u8,
    },
    StoreDiv {
        name_seed: u16,
    },
    ModifyAge {
        pick: u8,
        age: u8,
    },
    RenameEmp {
        pick: u8,
        name_seed: u16,
    },
    EraseEmp {
        pick: u8,
    },
    EraseDivCascade {
        pick: u8,
    },
    Disconnect {
        pick: u8,
    },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u16>(), any::<u8>(), any::<u8>(), any::<u8>()).prop_map(
            |(name_seed, dept, age, div_pick)| Op::StoreEmp {
                name_seed,
                dept,
                age,
                div_pick
            }
        ),
        any::<u16>().prop_map(|name_seed| Op::StoreDiv { name_seed }),
        (any::<u8>(), any::<u8>()).prop_map(|(pick, age)| Op::ModifyAge { pick, age }),
        (any::<u8>(), any::<u16>()).prop_map(|(pick, name_seed)| Op::RenameEmp { pick, name_seed }),
        any::<u8>().prop_map(|pick| Op::EraseEmp { pick }),
        any::<u8>().prop_map(|pick| Op::EraseDivCascade { pick }),
        any::<u8>().prop_map(|pick| Op::Disconnect { pick }),
    ]
}

fn pick(ids: &[RecordId], k: u8) -> Option<RecordId> {
    if ids.is_empty() {
        None
    } else {
        Some(ids[k as usize % ids.len()])
    }
}

fn apply(db: &mut NetworkDb, op: &Op) {
    // Every operation may legitimately fail (duplicates, members present);
    // the property is that the database never becomes inconsistent.
    match op {
        Op::StoreEmp {
            name_seed,
            dept,
            age,
            div_pick,
        } => {
            let divs = db.records_of_type("DIV");
            if let Some(div) = pick(&divs, *div_pick) {
                let _ = db.store(
                    "EMP",
                    &[
                        ("EMP-NAME", Value::str(format!("E{name_seed:05}"))),
                        ("DEPT-NAME", Value::str(format!("D{}", dept % 5))),
                        ("AGE", Value::Int(*age as i64 % 80)),
                    ],
                    &[("DIV-EMP", div)],
                );
            }
        }
        Op::StoreDiv { name_seed } => {
            let _ = db.store(
                "DIV",
                &[
                    ("DIV-NAME", Value::str(format!("DIV{name_seed:05}"))),
                    ("DIV-LOC", Value::str("X")),
                ],
                &[],
            );
        }
        Op::ModifyAge { pick: p, age } => {
            if let Some(id) = pick(&db.records_of_type("EMP"), *p) {
                let _ = db.modify(id, &[("AGE", Value::Int(*age as i64 % 80))]);
            }
        }
        Op::RenameEmp { pick: p, name_seed } => {
            if let Some(id) = pick(&db.records_of_type("EMP"), *p) {
                let _ = db.modify(id, &[("EMP-NAME", Value::str(format!("R{name_seed:05}")))]);
            }
        }
        Op::EraseEmp { pick: p } => {
            if let Some(id) = pick(&db.records_of_type("EMP"), *p) {
                let _ = db.erase(id, false);
            }
        }
        Op::EraseDivCascade { pick: p } => {
            if let Some(id) = pick(&db.records_of_type("DIV"), *p) {
                let _ = db.erase(id, true);
            }
        }
        Op::Disconnect { pick: p } => {
            if let Some(id) = pick(&db.records_of_type("EMP"), *p) {
                let _ = db.disconnect("DIV-EMP", id);
            }
        }
    }
}

/// The engine's structural invariants.
fn check_invariants(db: &NetworkDb) {
    let schema = db.schema().clone();
    for set in &schema.sets {
        let owners: Vec<RecordId> = match &set.owner {
            SetOwner::System => vec![SYSTEM_OWNER],
            SetOwner::Record(r) => db.records_of_type(r),
        };
        for owner in owners {
            let members = db.members_of(&set.name, owner).unwrap();
            // 1. Member lists are sorted by the declared keys.
            if !set.keys.is_empty() {
                let keys: Vec<Vec<Value>> = members
                    .iter()
                    .map(|&m| {
                        set.keys
                            .iter()
                            .map(|k| db.field_value(m, k).unwrap())
                            .collect()
                    })
                    .collect();
                for w in keys.windows(2) {
                    assert_ne!(
                        cmp_tuple(&w[0], &w[1]),
                        std::cmp::Ordering::Greater,
                        "set {} occurrence unsorted",
                        set.name
                    );
                }
                // 2. No duplicate keys within an occurrence.
                for w in keys.windows(2) {
                    assert_ne!(
                        cmp_tuple(&w[0], &w[1]),
                        std::cmp::Ordering::Equal,
                        "set {} occurrence has duplicate keys",
                        set.name
                    );
                }
            }
            // 3. owner_in is the inverse of members_of.
            for &m in &members {
                assert_eq!(
                    db.owner_in(&set.name, m).unwrap(),
                    Some(owner),
                    "member/owner index out of sync in {}",
                    set.name
                );
            }
        }
        // 4. System sets contain every record of their member type.
        if set.is_system() {
            let members = db.members_of(&set.name, SYSTEM_OWNER).unwrap();
            let mut all = db.records_of_type(&set.member);
            let mut ms = members.clone();
            all.sort();
            ms.sort();
            assert_eq!(all, ms, "system set {} incomplete", set.name);
        }
    }
    // 5. Every live record's values resolve.
    for r in &schema.records {
        for id in db.records_of_type(&r.name) {
            db.resolved_values(id).unwrap();
        }
    }
    // 6. Every derived access structure (per-type lists, set ordering and
    // reverse maps, materialized calc-key indexes) matches a from-scratch
    // rebuild.
    db.check_access_structures().unwrap();
    // 7. Calc-key probes agree with scan-and-filter, order included.
    for d in 0..5u8 {
        let want = Value::str(format!("D{d}"));
        if let Some(hits) = db
            .find_keyed("EMP", &["DEPT-NAME"], std::slice::from_ref(&want))
            .unwrap()
        {
            let scan: Vec<RecordId> = db
                .records_of_type("EMP")
                .into_iter()
                .filter(|&id| db.field_value(id, "DEPT-NAME").unwrap().loose_eq(&want))
                .collect();
            assert_eq!(hits, scan, "calc-key probe for D{d} diverged from scan");
        }
    }
}

// -- relational access structures -------------------------------------------

/// One random relational mutation against table T(K pk, C indexed, A).
#[derive(Debug, Clone)]
enum RelOp {
    Insert { k: u8, c: u8, a: u8 },
    DeleteByC { c: u8 },
    Reclass { k: u8, c: u8 },
    Bump { k: u8, a: u8 },
}

fn rel_op_strategy() -> impl Strategy<Value = RelOp> {
    prop_oneof![
        (any::<u8>(), any::<u8>(), any::<u8>()).prop_map(|(k, c, a)| RelOp::Insert { k, c, a }),
        any::<u8>().prop_map(|c| RelOp::DeleteByC { c }),
        (any::<u8>(), any::<u8>()).prop_map(|(k, c)| RelOp::Reclass { k, c }),
        (any::<u8>(), any::<u8>()).prop_map(|(k, a)| RelOp::Bump { k, a }),
    ]
}

fn rel_db() -> RelationalDb {
    let schema = RelationalSchema::new("P").with_table(
        TableDef::new(
            "T",
            vec![
                ColumnDef::new("K", FieldType::Int(4)),
                ColumnDef::new("C", FieldType::Char(4)),
                ColumnDef::new("A", FieldType::Int(4)),
            ],
        )
        .with_key(vec!["K"]),
    );
    let mut db = RelationalDb::new(schema).unwrap();
    db.create_index("T", &["C"]).unwrap();
    db
}

fn apply_rel(db: &mut RelationalDb, op: &RelOp) {
    // Failures (duplicate keys, empty matches) are legitimate; the property
    // is that the secondary index never drifts from the rows.
    match op {
        RelOp::Insert { k, c, a } => {
            let _ = db.insert(
                "T",
                &[
                    ("K", Value::Int((*k % 64) as i64)),
                    ("C", Value::str(format!("C{}", c % 8))),
                    ("A", Value::Int(*a as i64)),
                ],
            );
        }
        RelOp::DeleteByC { c } => {
            let want = Value::str(format!("C{}", c % 8));
            let _ = db.delete_where("T", |row| row[1].loose_eq(&want));
        }
        RelOp::Reclass { k, c } => {
            let want = Value::Int((*k % 64) as i64);
            let _ = db.update_where(
                "T",
                |row| row[0].loose_eq(&want),
                &[("C", Value::str(format!("C{}", c % 8)))],
            );
        }
        RelOp::Bump { k, a } => {
            let want = Value::Int((*k % 64) as i64);
            let _ = db.update_where(
                "T",
                |row| row[0].loose_eq(&want),
                &[("A", Value::Int(*a as i64))],
            );
        }
    }
}

fn check_rel(db: &RelationalDb) {
    db.check_access_structures().unwrap();
    // Index probes must agree with a full scan, in storage order.
    for c in 0..8u8 {
        let want = Value::str(format!("C{c}"));
        let candidates = db
            .probe_eq("T", &[("C".to_string(), want.clone())])
            .unwrap()
            .expect("C is indexed");
        let probed: Vec<Vec<Value>> = candidates
            .iter()
            .map(|&id| db.row("T", id).unwrap().to_vec())
            .filter(|r| r[1].loose_eq(&want))
            .collect();
        let scanned: Vec<Vec<Value>> = db
            .iter_rows("T")
            .unwrap()
            .filter(|(_, r)| r[1].loose_eq(&want))
            .map(|(_, r)| r.to_vec())
            .collect();
        assert_eq!(probed, scanned, "index probe for C{c} diverged from scan");
    }
}

// -- hierarchic access structures --------------------------------------------

/// One random hierarchic mutation against DIV → (EMP, PROJ).
#[derive(Debug, Clone)]
enum HierOp {
    AddDiv { n: u16 },
    AddEmp { pick: u8, n: u16 },
    AddProj { pick: u8, n: u16 },
    Rename { pick: u8, n: u16 },
    Touch { pick: u8, a: u8 },
    Delete { pick: u8 },
}

fn hier_op_strategy() -> impl Strategy<Value = HierOp> {
    prop_oneof![
        any::<u16>().prop_map(|n| HierOp::AddDiv { n }),
        (any::<u8>(), any::<u16>()).prop_map(|(pick, n)| HierOp::AddEmp { pick, n }),
        (any::<u8>(), any::<u16>()).prop_map(|(pick, n)| HierOp::AddProj { pick, n }),
        (any::<u8>(), any::<u16>()).prop_map(|(pick, n)| HierOp::Rename { pick, n }),
        (any::<u8>(), any::<u8>()).prop_map(|(pick, a)| HierOp::Touch { pick, a }),
        any::<u8>().prop_map(|pick| HierOp::Delete { pick }),
    ]
}

fn hier_seed() -> HierDb {
    let schema = HierSchema::new("COMPANY").with_root(
        SegmentDef::new("DIV", vec![FieldDef::new("DIV-NAME", FieldType::Char(20))])
            .with_seq_field("DIV-NAME")
            .with_child(
                SegmentDef::new(
                    "EMP",
                    vec![
                        FieldDef::new("EMP-NAME", FieldType::Char(25)),
                        FieldDef::new("AGE", FieldType::Int(2)),
                    ],
                )
                .with_seq_field("EMP-NAME"),
            )
            .with_child(SegmentDef::new(
                "PROJ",
                vec![FieldDef::new("PROJ-NAME", FieldType::Char(10))],
            )),
    );
    let mut db = HierDb::new(schema).unwrap();
    db.insert("DIV", &[("DIV-NAME", Value::str("SEED"))], None)
        .unwrap();
    db
}

fn pick_id(ids: &[u64], k: u8) -> Option<u64> {
    if ids.is_empty() {
        None
    } else {
        Some(ids[k as usize % ids.len()])
    }
}

fn apply_hier(db: &mut HierDb, op: &HierOp) {
    match op {
        HierOp::AddDiv { n } => {
            let _ = db.insert("DIV", &[("DIV-NAME", Value::str(format!("V{n:05}")))], None);
        }
        HierOp::AddEmp { pick, n } => {
            if let Some(div) = pick_id(&db.occurrences_of("DIV"), *pick) {
                let _ = db.insert(
                    "EMP",
                    &[("EMP-NAME", Value::str(format!("E{n:05}")))],
                    Some(div),
                );
            }
        }
        HierOp::AddProj { pick, n } => {
            if let Some(div) = pick_id(&db.occurrences_of("DIV"), *pick) {
                let _ = db.insert(
                    "PROJ",
                    &[("PROJ-NAME", Value::str(format!("P{n:04}")))],
                    Some(div),
                );
            }
        }
        HierOp::Rename { pick, n } => {
            // Seq-field replace: repositions the segment, invalidates cache.
            if let Some(emp) = pick_id(&db.occurrences_of("EMP"), *pick) {
                let _ = db.replace(emp, &[("EMP-NAME", Value::str(format!("R{n:05}")))]);
            }
        }
        HierOp::Touch { pick, a } => {
            // Non-seq replace: must keep the cache valid.
            if let Some(emp) = pick_id(&db.occurrences_of("EMP"), *pick) {
                let _ = db.replace(emp, &[("AGE", Value::Int(*a as i64 % 80))]);
            }
        }
        HierOp::Delete { pick } => {
            if let Some(id) = pick_id(&db.occurrences_of("EMP"), *pick) {
                let _ = db.delete(id);
            }
        }
    }
}

fn check_hier(db: &HierDb) {
    let order = db.preorder();
    db.check_access_structures().unwrap();
    // Stepwise GN navigation reproduces the materialized sequence exactly.
    let mut walked = Vec::new();
    let mut cur = None;
    while let Some(next) = db.next_in_preorder(cur, None) {
        walked.push(next);
        cur = Some(next);
    }
    assert_eq!(walked, order, "stepwise navigation diverged from preorder");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn invariants_hold_under_arbitrary_op_sequences(
        ops in prop::collection::vec(op_strategy(), 0..120)
    ) {
        let mut db = named::company_db(3, 3, 5);
        // Materialize a calc-key index up front, so the whole op sequence
        // exercises its incremental maintenance rather than a fresh build.
        db.find_keyed("EMP", &["DEPT-NAME"], &[Value::str("D0")]).unwrap();
        for op in &ops {
            apply(&mut db, op);
        }
        check_invariants(&db);
    }

    /// Secondary indexes stay consistent with the rows, and probes agree
    /// with scans, under arbitrary insert/delete/update interleavings.
    #[test]
    fn relational_index_consistent_under_interleavings(
        ops in prop::collection::vec(rel_op_strategy(), 0..120)
    ) {
        let mut db = rel_db();
        for op in &ops {
            apply_rel(&mut db, op);
        }
        check_rel(&db);
    }

    /// The preorder cache survives arbitrary mutation interleavings: it is
    /// rebuilt lazily, kept across non-seq replaces, and always equal to a
    /// from-scratch traversal.
    #[test]
    fn hierarchic_cache_consistent_under_interleavings(
        ops in prop::collection::vec(hier_op_strategy(), 0..100)
    ) {
        let mut db = hier_seed();
        for (i, op) in ops.iter().enumerate() {
            apply_hier(&mut db, op);
            // Periodically force the cache alive mid-sequence so later
            // mutations must invalidate (not just lazily avoid) it.
            if i % 7 == 0 {
                let _ = db.preorder();
                db.check_access_structures().unwrap();
            }
        }
        check_hier(&db);
    }

    /// Translation preserves the invariants too (the rebuild goes through
    /// the same mutation API, but diamond cases deserve the check).
    #[test]
    fn invariants_hold_after_translation(
        ops in prop::collection::vec(op_strategy(), 0..60)
    ) {
        let mut db = named::company_db(2, 3, 4);
        for op in &ops {
            apply(&mut db, op);
        }
        let r = named::fig_4_4_restructuring();
        if let Ok(t) = r.translate(&db) {
            check_invariants(&t);
        }
    }
}
