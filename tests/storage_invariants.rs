//! Property tests on the owner-coupled-set engine's invariants under
//! arbitrary operation sequences. Trace-equality conversion checking is
//! only as trustworthy as the substrate, so the substrate gets its own
//! adversarial workout.

use dbpc::corpus::named;
use dbpc::datamodel::network::SetOwner;
use dbpc::datamodel::value::{cmp_tuple, Value};
use dbpc::storage::{NetworkDb, RecordId, SYSTEM_OWNER};
use proptest::prelude::*;

/// One random mutation.
#[derive(Debug, Clone)]
enum Op {
    StoreEmp { name_seed: u16, dept: u8, age: u8, div_pick: u8 },
    StoreDiv { name_seed: u16 },
    ModifyAge { pick: u8, age: u8 },
    RenameEmp { pick: u8, name_seed: u16 },
    EraseEmp { pick: u8 },
    EraseDivCascade { pick: u8 },
    Disconnect { pick: u8 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u16>(), any::<u8>(), any::<u8>(), any::<u8>())
            .prop_map(|(name_seed, dept, age, div_pick)| Op::StoreEmp {
                name_seed,
                dept,
                age,
                div_pick
            }),
        any::<u16>().prop_map(|name_seed| Op::StoreDiv { name_seed }),
        (any::<u8>(), any::<u8>()).prop_map(|(pick, age)| Op::ModifyAge { pick, age }),
        (any::<u8>(), any::<u16>())
            .prop_map(|(pick, name_seed)| Op::RenameEmp { pick, name_seed }),
        any::<u8>().prop_map(|pick| Op::EraseEmp { pick }),
        any::<u8>().prop_map(|pick| Op::EraseDivCascade { pick }),
        any::<u8>().prop_map(|pick| Op::Disconnect { pick }),
    ]
}

fn pick(ids: &[RecordId], k: u8) -> Option<RecordId> {
    if ids.is_empty() {
        None
    } else {
        Some(ids[k as usize % ids.len()])
    }
}

fn apply(db: &mut NetworkDb, op: &Op) {
    // Every operation may legitimately fail (duplicates, members present);
    // the property is that the database never becomes inconsistent.
    match op {
        Op::StoreEmp {
            name_seed,
            dept,
            age,
            div_pick,
        } => {
            let divs = db.records_of_type("DIV");
            if let Some(div) = pick(&divs, *div_pick) {
                let _ = db.store(
                    "EMP",
                    &[
                        ("EMP-NAME", Value::str(format!("E{name_seed:05}"))),
                        ("DEPT-NAME", Value::str(format!("D{}", dept % 5))),
                        ("AGE", Value::Int(*age as i64 % 80)),
                    ],
                    &[("DIV-EMP", div)],
                );
            }
        }
        Op::StoreDiv { name_seed } => {
            let _ = db.store(
                "DIV",
                &[
                    ("DIV-NAME", Value::str(format!("DIV{name_seed:05}"))),
                    ("DIV-LOC", Value::str("X")),
                ],
                &[],
            );
        }
        Op::ModifyAge { pick: p, age } => {
            if let Some(id) = pick(&db.records_of_type("EMP"), *p) {
                let _ = db.modify(id, &[("AGE", Value::Int(*age as i64 % 80))]);
            }
        }
        Op::RenameEmp { pick: p, name_seed } => {
            if let Some(id) = pick(&db.records_of_type("EMP"), *p) {
                let _ = db.modify(id, &[("EMP-NAME", Value::str(format!("R{name_seed:05}")))]);
            }
        }
        Op::EraseEmp { pick: p } => {
            if let Some(id) = pick(&db.records_of_type("EMP"), *p) {
                let _ = db.erase(id, false);
            }
        }
        Op::EraseDivCascade { pick: p } => {
            if let Some(id) = pick(&db.records_of_type("DIV"), *p) {
                let _ = db.erase(id, true);
            }
        }
        Op::Disconnect { pick: p } => {
            if let Some(id) = pick(&db.records_of_type("EMP"), *p) {
                let _ = db.disconnect("DIV-EMP", id);
            }
        }
    }
}

/// The engine's structural invariants.
fn check_invariants(db: &NetworkDb) {
    let schema = db.schema().clone();
    for set in &schema.sets {
        let owners: Vec<RecordId> = match &set.owner {
            SetOwner::System => vec![SYSTEM_OWNER],
            SetOwner::Record(r) => db.records_of_type(r),
        };
        for owner in owners {
            let members = db.members_of(&set.name, owner).unwrap();
            // 1. Member lists are sorted by the declared keys.
            if !set.keys.is_empty() {
                let keys: Vec<Vec<Value>> = members
                    .iter()
                    .map(|&m| {
                        set.keys
                            .iter()
                            .map(|k| db.field_value(m, k).unwrap())
                            .collect()
                    })
                    .collect();
                for w in keys.windows(2) {
                    assert_ne!(
                        cmp_tuple(&w[0], &w[1]),
                        std::cmp::Ordering::Greater,
                        "set {} occurrence unsorted",
                        set.name
                    );
                }
                // 2. No duplicate keys within an occurrence.
                for w in keys.windows(2) {
                    assert_ne!(
                        cmp_tuple(&w[0], &w[1]),
                        std::cmp::Ordering::Equal,
                        "set {} occurrence has duplicate keys",
                        set.name
                    );
                }
            }
            // 3. owner_in is the inverse of members_of.
            for &m in &members {
                assert_eq!(
                    db.owner_in(&set.name, m).unwrap(),
                    Some(owner),
                    "member/owner index out of sync in {}",
                    set.name
                );
            }
        }
        // 4. System sets contain every record of their member type.
        if set.is_system() {
            let members = db.members_of(&set.name, SYSTEM_OWNER).unwrap();
            let mut all = db.records_of_type(&set.member);
            let mut ms = members.clone();
            all.sort();
            ms.sort();
            assert_eq!(all, ms, "system set {} incomplete", set.name);
        }
    }
    // 5. Every live record's values resolve.
    for r in &schema.records {
        for id in db.records_of_type(&r.name) {
            db.resolved_values(id).unwrap();
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn invariants_hold_under_arbitrary_op_sequences(
        ops in prop::collection::vec(op_strategy(), 0..120)
    ) {
        let mut db = named::company_db(3, 3, 5);
        for op in &ops {
            apply(&mut db, op);
        }
        check_invariants(&db);
    }

    /// Translation preserves the invariants too (the rebuild goes through
    /// the same mutation API, but diamond cases deserve the check).
    #[test]
    fn invariants_hold_after_translation(
        ops in prop::collection::vec(op_strategy(), 0..60)
    ) {
        let mut db = named::company_db(2, 3, 4);
        for op in &ops {
            apply(&mut db, op);
        }
        let r = named::fig_4_4_restructuring();
        if let Ok(t) = r.translate(&db) {
            check_invariants(&t);
        }
    }
}
