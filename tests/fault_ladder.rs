//! The fault-injection × strategy-ladder matrix.
//!
//! Three contracts of the robustness layer, end to end:
//!
//! 1. **No fault, no change.** With an idle fault plan the ladder serves
//!    every clean program from the top rung (full rewriting) with an empty
//!    fallback log, and its report is byte-identical to the plain
//!    supervisor's — the ladder is pure insurance.
//! 2. **Documented descent.** Each injected fault — typed error or panic,
//!    at each pipeline stage — lands the program on exactly the rung the
//!    ladder module documents: analyzer/converter/generator faults fail
//!    both rewriting rungs and are served by DML emulation, an optimizer
//!    fault is served by rewriting-without-the-optimizer, and a
//!    translation or verification fault (which poisons every automatic
//!    strategy's verification) lands on manual.
//! 3. **Determinism under parallelism.** Fault decisions are a pure
//!    function of `(seed, stage, program key)`, so a seeded probabilistic
//!    plan produces identical ladder outcomes at 1, 2, and 8 threads, and
//!    a targeted fault hits exactly one program of a batch while every
//!    sibling report stays byte-identical to the fault-free run.

use dbpc::convert::equivalence::EquivalenceLevel;
use dbpc::convert::report::AutoAnalyst;
use dbpc::convert::{run_ladder, FaultKind, FaultPlan, LadderConfig, Rung, Supervisor, Verdict};
use dbpc::corpus::gen::{ProgramClass, TransformClass};
use dbpc::corpus::harness::{
    ladder_reports, program_fault_key, success_rate_study_config, StudyConfig,
};
use dbpc::corpus::named;
use dbpc::datamodel::error::{PipelineError, Stage};
use dbpc::dml::host::{parse_program, Program};
use dbpc::engine::Inputs;

/// The §4.2 retrieval program over the company schema, with an observable
/// output so trace verification is non-vacuous.
fn clean_program() -> Program {
    parse_program(
        "PROGRAM P;
  FIND E := FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-EMP, EMP(AGE > 30));
  PRINT COUNT(E);
END PROGRAM;",
    )
    .unwrap()
}

const KEY: u64 = 7;

fn descend(plan: FaultPlan) -> dbpc::convert::LadderOutcome {
    let supervisor = Supervisor {
        fault: plan,
        ..Supervisor::default()
    };
    let mut db = named::company_db(4, 3, 8);
    run_ladder(
        &supervisor,
        &LadderConfig::default(),
        &named::company_schema(),
        &named::fig_4_4_restructuring(),
        &clean_program(),
        KEY,
        &mut db,
        &Inputs::new(),
        &mut AutoAnalyst,
    )
}

#[test]
fn clean_descent_serves_full_rewriting_with_no_fallbacks() {
    let outcome = descend(FaultPlan::none());
    assert_eq!(outcome.report.rung, Rung::FullRewrite);
    assert!(outcome.report.fallbacks.is_empty());
    assert!(outcome.report.succeeded());
    assert_eq!(outcome.level, Some(EquivalenceLevel::Strict));
    assert_eq!(outcome.attempts, 1);

    // Byte-identical to the plain (ladder-free) pipeline's report.
    let plain = Supervisor::default()
        .convert(
            &named::company_schema(),
            &named::fig_4_4_restructuring(),
            &clean_program(),
            &mut AutoAnalyst,
        )
        .unwrap();
    assert_eq!(outcome.report, plain);
}

#[test]
fn each_fault_lands_on_its_documented_rung() {
    // (faulted stage, rung that must end up serving the program).
    let expectations = [
        (Stage::Analyzer, Rung::Emulation),
        (Stage::Converter, Rung::Emulation),
        (Stage::Generator, Rung::Emulation),
        (Stage::Optimizer, Rung::RewriteNoOptimizer),
        (Stage::Translation, Rung::Manual),
        (Stage::Verification, Rung::Manual),
    ];
    for (stage, serving) in expectations {
        for kind in [FaultKind::Error, FaultKind::Panic] {
            let outcome = descend(FaultPlan::none().with_fault(stage, KEY, kind));
            let report = &outcome.report;
            assert_eq!(
                report.rung, serving,
                "{kind:?} at {stage} should be served by {serving}"
            );
            assert!(
                !report.fallbacks.is_empty(),
                "{kind:?} at {stage} must record why earlier rungs failed"
            );
            // The fallback log covers exactly the rungs above the serving
            // one, in descent order.
            let failed: Vec<Rung> = report.fallbacks.iter().map(|f| f.rung).collect();
            let expected_failed: Vec<Rung> = dbpc::convert::LADDER
                .iter()
                .copied()
                .take_while(|r| *r < serving)
                .collect();
            assert_eq!(failed, expected_failed, "{kind:?} at {stage}");
            if serving == Rung::Manual {
                assert_eq!(report.verdict, Verdict::NeedsManualWork);
                assert!(outcome.level.is_none());
            } else {
                assert!(report.succeeded(), "{kind:?} at {stage}");
                assert!(outcome.level.is_some(), "{kind:?} at {stage}");
            }
            // A persistent fault exhausts the retry budget on each rung it
            // reaches (1 + default retry = 2 attempts).
            for failure in &report.fallbacks {
                if failure.rung != serving {
                    assert!(failure.attempts >= 1, "{kind:?} at {stage}");
                }
            }
        }
    }
}

#[test]
fn transient_fault_is_retried_on_the_same_rung() {
    for kind in [FaultKind::Error, FaultKind::Panic] {
        let outcome =
            descend(FaultPlan::none().with_transient_fault(Stage::Converter, KEY, kind, 1));
        // One injected failure, one retry, served by the top rung: the
        // transient fault never demotes the program.
        assert_eq!(outcome.report.rung, Rung::FullRewrite, "{kind:?}");
        assert!(outcome.report.fallbacks.is_empty(), "{kind:?}");
        assert_eq!(outcome.attempts, 2, "{kind:?}");
        assert!(outcome.report.succeeded(), "{kind:?}");
    }
}

#[test]
fn injected_panics_poison_only_their_program_in_the_plain_matrix() {
    let target_t = TransformClass::RenameAgeField;
    let target_pc = ProgramClass::ALL[2];
    let plan = FaultPlan::none().with_fault(
        Stage::Converter,
        program_fault_key(target_t, target_pc, 1),
        FaultKind::Panic,
    );
    let clean = success_rate_study_config(&StudyConfig {
        threads: 1,
        ..StudyConfig::new(2, 1979)
    });
    for threads in [1, 8] {
        let faulted = success_rate_study_config(&StudyConfig {
            threads,
            fault_plan: plan.clone(),
            ..StudyConfig::new(2, 1979)
        });
        for (clean_row, faulted_row) in clean.rows.iter().zip(&faulted.rows) {
            for ((pc, clean_cell), (_, faulted_cell)) in
                clean_row.cells.iter().zip(&faulted_row.cells)
            {
                if clean_row.transform == target_t && *pc == target_pc {
                    // The batch completed; the poisoned program moved to
                    // the failure column and out of its clean verdict.
                    assert_eq!(faulted_cell.poisoned, 1, "threads = {threads}");
                    assert_eq!(faulted_cell.total, clean_cell.total);
                } else {
                    assert_eq!(
                        clean_cell, faulted_cell,
                        "sibling cell {}/{} changed under a targeted fault \
                         (threads = {threads})",
                        clean_row.transform, pc
                    );
                }
            }
        }
    }
}

#[test]
fn targeted_fault_demotes_exactly_one_ladder_report() {
    let samples = 2;
    let target_t = TransformClass::Promote;
    let target_pc = ProgramClass::ALL[0];
    let target_k = 1;
    let target_idx = {
        let t_idx = TransformClass::ALL
            .iter()
            .position(|t| *t == target_t)
            .unwrap();
        let pc_idx = ProgramClass::ALL
            .iter()
            .position(|pc| *pc == target_pc)
            .unwrap();
        (t_idx * ProgramClass::ALL.len() + pc_idx) * samples + target_k
    };
    let plan = FaultPlan::none().with_fault(
        Stage::Converter,
        program_fault_key(target_t, target_pc, target_k),
        FaultKind::Panic,
    );
    let clean = ladder_reports(&StudyConfig {
        threads: 1,
        ladder: true,
        ..StudyConfig::new(samples, 1979)
    });
    for threads in [1, 8] {
        let faulted = ladder_reports(&StudyConfig {
            threads,
            ladder: true,
            fault_plan: plan.clone(),
            ..StudyConfig::new(samples, 1979)
        });
        assert_eq!(clean.len(), faulted.len());
        for (i, (c, f)) in clean.iter().zip(&faulted).enumerate() {
            if i == target_idx {
                // The faulted program is served by a lower rung (or by
                // nobody), with the converter failures on record.
                assert!(f.rung > c.rung, "threads = {threads}");
                assert!(!f.fallbacks.is_empty(), "threads = {threads}");
                assert!(
                    f.fallbacks.iter().any(|fb| matches!(
                        fb.error,
                        PipelineError::Panic { .. } | PipelineError::Injected { .. }
                    )),
                    "threads = {threads}"
                );
            } else {
                assert_eq!(c, f, "report {i} changed (threads = {threads})");
            }
        }
    }
}

#[test]
fn seeded_probabilistic_faults_are_thread_count_invariant() {
    let make = |threads: usize| StudyConfig {
        threads,
        ladder: true,
        fault_plan: FaultPlan::seeded(0xFA17, 0.25),
        ..StudyConfig::new(1, 1979)
    };
    let reference_reports = ladder_reports(&make(1));
    let reference_matrix = success_rate_study_config(&make(1));
    // The plan really does fire somewhere at this probability.
    assert!(
        reference_reports.iter().any(|r| !r.fallbacks.is_empty()),
        "seeded plan injected nothing; the invariance check would be vacuous"
    );
    for threads in [2, 8] {
        assert_eq!(
            reference_reports,
            ladder_reports(&make(threads)),
            "ladder reports differ at {threads} threads"
        );
        let matrix = success_rate_study_config(&make(threads));
        assert_eq!(reference_matrix.rows, matrix.rows);
    }
}
