//! Cross-model conversion, end to end and executable (§4.1's claim that
//! model-independent access patterns make DBMS-to-DBMS conversion
//! possible).

use dbpc::convert::generator::lower_find_to_sequel;
use dbpc::corpus::named;
use dbpc::dml::host::{parse_program, Stmt};
use dbpc::engine::host_exec::run_host;
use dbpc::engine::sequel_exec::eval_select;
use dbpc::engine::Inputs;
use dbpc::restructure::crossmodel::{
    network_db_to_hier, network_db_to_relational, relational_db_to_network,
};

/// A network retrieval, lowered to SEQUEL over the DBKEY relational
/// encoding, returns the same rows in the same order as the network
/// original — an executable cross-model conversion.
#[test]
fn lowered_sequel_matches_network_retrieval() {
    let mut net = named::company_db(3, 3, 10);
    let rel = network_db_to_relational(&net).unwrap();

    let program = parse_program(
        "PROGRAM P;
  FIND E := FIND(EMP: SYSTEM, ALL-DIV, DIV(DIV-NAME = 'MACHINERY'), DIV-EMP, EMP(AGE > 30));
  FOR EACH R IN E DO
    PRINT R.EMP-NAME, R.AGE;
  END FOR;
END PROGRAM;",
    )
    .unwrap();
    let trace = run_host(&mut net, &program, Inputs::new()).unwrap();

    let Stmt::Find { query, .. } = &program.stmts[0] else {
        panic!()
    };
    let q = lower_find_to_sequel(query.spec(), vec!["EMP-NAME", "AGE"], net.schema()).unwrap();
    let rows = eval_select(&rel, &q).unwrap();
    let row_lines: Vec<String> = rows
        .iter()
        .map(|r| {
            r.iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join(" ")
        })
        .collect();
    assert!(!row_lines.is_empty());
    assert_eq!(
        trace
            .terminal_lines()
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>(),
        row_lines
    );
}

/// The DBKEY encoding is lossless: network → relational → network preserves
/// everything observable, at scale.
#[test]
fn relational_encoding_round_trips_at_scale() {
    let net = named::company_db(5, 4, 20);
    let rel = network_db_to_relational(&net).unwrap();
    let back = relational_db_to_network(&rel, net.schema()).unwrap();
    assert_eq!(
        net.records_of_type("EMP").len(),
        back.records_of_type("EMP").len()
    );
    // Same report from both.
    let program = parse_program(
        "PROGRAM P;
  FIND E := FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-EMP, EMP(AGE > 40));
  FOR EACH R IN E DO
    PRINT R.EMP-NAME, R.DEPT-NAME, R.DIV-NAME;
  END FOR;
END PROGRAM;",
    )
    .unwrap();
    let mut a = net.clone();
    let mut b = back.clone();
    let ta = run_host(&mut a, &program, Inputs::new()).unwrap();
    let tb = run_host(&mut b, &program, Inputs::new()).unwrap();
    assert_eq!(ta, tb);
}

/// The hierarchical mapping agrees with the network original on the
/// contents it can express.
#[test]
fn hier_mapping_preserves_employee_census() {
    let net = named::company_db(3, 2, 8);
    let hier = network_db_to_hier(&net).unwrap();
    assert_eq!(
        hier.occurrences_of("EMP").len(),
        net.records_of_type("EMP").len()
    );
    assert_eq!(
        hier.occurrences_of("DIV").len(),
        net.records_of_type("DIV").len()
    );
    // Hierarchic employee order within a division equals the set order.
    let div = net
        .records_of_type("DIV")
        .into_iter()
        .find(|&d| {
            net.field_value(d, "DIV-NAME").unwrap()
                == dbpc::datamodel::value::Value::str("MACHINERY")
        })
        .unwrap();
    let net_names: Vec<String> = net
        .members_of("DIV-EMP", div)
        .unwrap()
        .iter()
        .map(|&e| net.field_value(e, "EMP-NAME").unwrap().to_string())
        .collect();
    let hdiv = hier
        .occurrences_of("DIV")
        .into_iter()
        .find(|&d| {
            hier.field_value(d, "DIV-NAME").unwrap()
                == dbpc::datamodel::value::Value::str("MACHINERY")
        })
        .unwrap();
    let hier_names: Vec<String> = hier
        .children_of(hdiv, "EMP")
        .unwrap()
        .iter()
        .map(|&e| hier.field_value(e, "EMP-NAME").unwrap().to_string())
        .collect();
    assert_eq!(net_names, hier_names);
}

/// A whole retrieval program converted DBMS-to-DBMS: the network host
/// program becomes an executable SEQUEL program with identical terminal
/// output.
#[test]
fn whole_program_converts_to_sequel() {
    use dbpc::convert::generator::convert_retrieval_program_to_sequel;
    use dbpc::engine::sequel_exec::run_sequel;

    let mut net = named::company_db(3, 3, 10);
    let program = parse_program(
        "PROGRAM REPORTS;
  FIND SENIOR := FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-EMP, EMP(AGE > 50));
  FOR EACH R IN SENIOR DO
    PRINT R.EMP-NAME, R.AGE;
  END FOR;
  FOR EACH R IN FIND(DIV: SYSTEM, ALL-DIV, DIV(DIV-LOC = 'CITY-00')) DO
    PRINT R.DIV-NAME;
  END FOR;
END PROGRAM;",
    )
    .unwrap();
    let trace = run_host(&mut net, &program, Inputs::new()).unwrap();

    let sequel = convert_retrieval_program_to_sequel(&program, net.schema()).unwrap();
    assert_eq!(sequel.stmts.len(), 2);
    let mut rel = network_db_to_relational(&net).unwrap();
    let rel_trace = run_sequel(&mut rel, &sequel, Inputs::new()).unwrap();
    assert_eq!(trace.terminal_lines(), rel_trace.terminal_lines());
}

/// Programs outside the retrieval sublanguage are rejected with a
/// diagnostic, not mis-translated.
#[test]
fn unsupported_programs_rejected_for_sequel_conversion() {
    use dbpc::convert::generator::convert_retrieval_program_to_sequel;
    let net = named::company_db(1, 1, 1);
    let p = parse_program(
        "PROGRAM U;
  FIND D := FIND(DIV: SYSTEM, ALL-DIV, DIV);
  STORE EMP (EMP-NAME := 'X') CONNECT TO DIV-EMP OF D;
END PROGRAM;",
    )
    .unwrap();
    assert!(convert_retrieval_program_to_sequel(&p, net.schema()).is_err());
}
