//! Transactional statistics: the planner's `StatCatalog` is a derived
//! view over access structures the undo journal already restores, so it
//! must be **transactional by construction** — `rollback_to` a savepoint
//! returns the catalog to exactly its pre-savepoint value (fingerprint
//! equality), on all three storage engines, with warmed lazy structures
//! (calc-key indexes, the hierarchic preorder cache) in play. A
//! crash-resumed data translation must likewise yield a catalog identical
//! to the uncrashed run's.
//!
//! Without these guarantees the cost-based planner could price plans from
//! stale cardinalities after a rolled-back run — the stats analogue of
//! the torn-write bugs the PR 4 undo journal exists to prevent.

use dbpc::corpus::named;
use dbpc::datamodel::hierarchical::{HierSchema, SegmentDef};
use dbpc::datamodel::network::FieldDef;
use dbpc::datamodel::relational::{ColumnDef, RelationalSchema, TableDef};
use dbpc::datamodel::types::FieldType;
use dbpc::datamodel::value::Value;
use dbpc::restructure::{resume_translation, translate_batched, BatchedOutcome};
use dbpc::storage::{HierDb, RelationalDb, StatCatalog, SYSTEM_OWNER};

fn rel_db() -> RelationalDb {
    let schema = RelationalSchema::new("S").with_table(
        TableDef::new(
            "PART",
            vec![
                ColumnDef::new("P#", FieldType::Int(6)),
                ColumnDef::new("CLASS", FieldType::Char(4)),
            ],
        )
        .with_key(vec!["P#"]),
    );
    let mut db = RelationalDb::new(schema).unwrap();
    db.create_index("PART", &["CLASS"]).unwrap();
    for i in 0..20 {
        db.insert(
            "PART",
            &[
                ("P#", Value::Int(i)),
                ("CLASS", Value::str(format!("C{}", i % 4))),
            ],
        )
        .unwrap();
    }
    db
}

#[test]
fn relational_rollback_restores_catalog() {
    let mut db = rel_db();
    let before = StatCatalog::of_relational(&db);

    let sp = db.begin_savepoint();
    for i in 20..40 {
        db.insert(
            "PART",
            &[("P#", Value::Int(i)), ("CLASS", Value::str("NEW"))],
        )
        .unwrap();
    }
    db.delete_where("PART", |row| row[0] == Value::Int(3))
        .unwrap();
    let during = StatCatalog::of_relational(&db);
    assert_ne!(
        before.fingerprint(),
        during.fingerprint(),
        "mutations must be visible in the catalog"
    );
    assert_eq!(during.cardinality_of("PART"), Some(39));

    db.rollback_to(sp);
    let after = StatCatalog::of_relational(&db);
    assert_eq!(before, after);
    assert_eq!(before.fingerprint(), after.fingerprint());
}

#[test]
fn network_rollback_restores_catalog_with_warm_calc_index() {
    let mut db = named::company_db(4, 3, 8);
    // Warm the lazy calc-key index so the undo path must maintain it.
    let hit = db
        .find_keyed("DIV", &["DIV-NAME"], &[Value::str("MACHINERY")])
        .unwrap();
    assert!(hit.is_some(), "fixture MACHINERY must be keyed-reachable");
    let before = StatCatalog::of_network(&db);

    let sp = db.begin_savepoint();
    let div = db
        .store("DIV", &[("DIV-NAME", Value::str("DIV-NEW"))], &[])
        .unwrap();
    for n in ["A", "B", "C"] {
        db.store(
            "EMP",
            &[
                ("EMP-NAME", Value::str(n)),
                ("DEPT-NAME", Value::str("SALES")),
                ("AGE", Value::Int(30)),
            ],
            &[("DIV-EMP", div)],
        )
        .unwrap();
    }
    let erased = db.records_of_type("EMP")[0];
    db.erase(erased, true).unwrap();
    let during = StatCatalog::of_network(&db);
    assert_ne!(before.fingerprint(), during.fingerprint());

    db.rollback_to(sp);
    let after = StatCatalog::of_network(&db);
    assert_eq!(before, after);
    assert_eq!(before.fingerprint(), after.fingerprint());
    // The warmed index answers identically after the rollback.
    assert_eq!(
        db.find_keyed("DIV", &["DIV-NAME"], &[Value::str("MACHINERY")])
            .unwrap(),
        hit
    );
}

#[test]
fn hier_rollback_restores_catalog_with_warm_preorder() {
    let schema = HierSchema::new("COMPANY").with_root(
        SegmentDef::new("DIV", vec![FieldDef::new("DIV-NAME", FieldType::Char(20))])
            .with_seq_field("DIV-NAME")
            .with_child(
                SegmentDef::new("EMP", vec![FieldDef::new("EMP-NAME", FieldType::Char(25))])
                    .with_seq_field("EMP-NAME"),
            ),
    );
    let mut db = HierDb::new(schema).unwrap();
    let mut roots = Vec::new();
    for d in 0..3 {
        let div = db
            .insert("DIV", &[("DIV-NAME", Value::str(format!("DIV{d}")))], None)
            .unwrap();
        roots.push(div);
        for e in 0..5 {
            db.insert(
                "EMP",
                &[("EMP-NAME", Value::str(format!("E{d}{e}")))],
                Some(div),
            )
            .unwrap();
        }
    }
    // Warm the preorder cache so rollback must keep it consistent.
    assert!(db.next_in_preorder(None, Some("EMP")).is_some());
    let before = StatCatalog::of_hier(&db);
    assert_eq!(before.cardinality_of("EMP"), Some(15));

    let sp = db.begin_savepoint();
    db.insert("EMP", &[("EMP-NAME", Value::str("NEW"))], Some(roots[0]))
        .unwrap();
    db.delete(roots[2]).unwrap(); // cascades its 5 EMP children
    let during = StatCatalog::of_hier(&db);
    assert_ne!(before.fingerprint(), during.fingerprint());

    db.rollback_to(sp);
    let after = StatCatalog::of_hier(&db);
    assert_eq!(before, after);
    assert_eq!(before.fingerprint(), after.fingerprint());
    db.check_access_structures().unwrap();
}

#[test]
fn nested_savepoints_restore_catalog_stepwise() {
    let mut db = named::company_db(2, 2, 4);
    let fp0 = StatCatalog::of_network(&db).fingerprint();
    let sp1 = db.begin_savepoint();
    let d = db
        .store("DIV", &[("DIV-NAME", Value::str("X"))], &[])
        .unwrap();
    let fp1 = StatCatalog::of_network(&db).fingerprint();
    let sp2 = db.begin_savepoint();
    db.store(
        "EMP",
        &[
            ("EMP-NAME", Value::str("Y")),
            ("DEPT-NAME", Value::str("MFG")),
            ("AGE", Value::Int(20)),
        ],
        &[("DIV-EMP", d)],
    )
    .unwrap();
    assert_ne!(StatCatalog::of_network(&db).fingerprint(), fp1);
    db.rollback_to(sp2);
    assert_eq!(StatCatalog::of_network(&db).fingerprint(), fp1);
    db.rollback_to(sp1);
    assert_eq!(StatCatalog::of_network(&db).fingerprint(), fp0);
}

#[test]
fn crash_resumed_translation_yields_identical_catalog() {
    let source = named::company_db(4, 3, 8);
    let restructuring = named::fig_4_4_restructuring();
    let transform = &restructuring.transforms[0];

    let one_shot = match translate_batched(&source, transform, 3, &mut |_| false).unwrap() {
        BatchedOutcome::Complete(out) => out,
        BatchedOutcome::Crashed(_) => unreachable!("never-crash plan crashed"),
    };
    let reference = StatCatalog::of_network(&one_shot);
    assert!(reference.total_records() > 0);

    // Crash at every boundary; the resumed run's catalog must match.
    let boundaries = {
        let mut n = 0;
        let _ = translate_batched(&source, transform, 3, &mut |_| {
            n += 1;
            false
        })
        .unwrap();
        n
    };
    for crash_at in 0..boundaries {
        let ckpt = match translate_batched(&source, transform, 3, &mut |b| b == crash_at).unwrap() {
            BatchedOutcome::Crashed(ckpt) => ckpt,
            BatchedOutcome::Complete(_) => unreachable!("crash plan never fired"),
        };
        let resumed = resume_translation(&source, transform, ckpt).unwrap();
        let catalog = StatCatalog::of_network(&resumed);
        assert_eq!(
            reference, catalog,
            "catalog diverged when crashed at boundary {crash_at}"
        );
        assert_eq!(reference.fingerprint(), catalog.fingerprint());
    }
}

#[test]
fn catalog_reading_is_access_invisible() {
    let db = named::company_db(4, 3, 8);
    // Warm lazy structures first so catalog construction cannot be blamed
    // for their build cost either way.
    let _ = db.find_keyed("DIV", &["DIV-NAME"], &[Value::str("MACHINERY")]);
    let _ = db.members_of("ALL-DIV", SYSTEM_OWNER);
    db.access_stats().reset();
    let before = db.access_stats().snapshot();
    let _ = StatCatalog::of_network(&db);
    let after = db.access_stats().snapshot();
    assert_eq!(
        before, after,
        "building a StatCatalog must not touch access-path counters"
    );
}

#[test]
fn network_catalog_matches_translated_reality() {
    // Cross-check: catalog cardinalities equal direct recounts on the
    // translated database (no stale incremental state).
    let source = named::company_db(3, 2, 5);
    let target = named::fig_4_4_restructuring().translate(&source).unwrap();
    let catalog = StatCatalog::of_network(&target);
    for r in &target.schema().records.clone() {
        assert_eq!(
            catalog.cardinality_of(&r.name),
            Some(target.records_of_type(&r.name).len() as u64),
            "cardinality mismatch for {}",
            r.name
        );
    }
}
