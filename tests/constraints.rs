//! Constraint movement between program logic and the data model —
//! the §3.1/§4.1 story, executed (experiment E4's correctness side).

use dbpc::convert::equivalence::{check_equivalence, EquivalenceLevel};
use dbpc::convert::report::{AutoAnalyst, Warning};
use dbpc::convert::Supervisor;
use dbpc::corpus::named;
use dbpc::datamodel::constraint::Constraint;
use dbpc::dml::host::parse_program;
use dbpc::engine::host_exec::run_host;
use dbpc::engine::Inputs;
use dbpc::restructure::{Restructuring, Transform};

/// Procedural → declarative: the program's CHECK guard becomes a schema
/// constraint; the optimizer removes the now-redundant check (and its
/// feeder FIND); behavior is preserved — including the abort when the
/// limit is hit.
#[test]
fn procedural_to_declarative_preserves_behavior() {
    let schema = named::company_schema();
    let restructuring = Restructuring::single(Transform::AddConstraint(Constraint::Cardinality {
        set: "DIV-EMP".into(),
        min: 0,
        max: Some(3),
    }));
    // The program enforces "at most 2 employees per division" itself.
    let program = parse_program(
        "PROGRAM HIRE;
  FIND D := FIND(DIV: SYSTEM, ALL-DIV, DIV(DIV-NAME = 'MACHINERY'));
  FIND STAFF := FIND(EMP: D, DIV-EMP, EMP);
  CHECK COUNT(STAFF) < 3 ELSE ABORT 'DIVISION FULL';
  STORE EMP (EMP-NAME := 'ZZ-NEW', DEPT-NAME := 'ENG', AGE := 30) CONNECT TO DIV-EMP OF D;
  PRINT 'HIRED';
END PROGRAM;",
    )
    .unwrap();
    let report = Supervisor::new()
        .convert(&schema, &restructuring, &program, &mut AutoAnalyst)
        .unwrap();
    assert!(report.succeeded());
    // The optimizer removed the guard.
    assert!(report
        .warnings
        .iter()
        .any(|w| matches!(w, Warning::RedundantCheckRemoved { .. })));
    let text = report.text.as_ref().unwrap();
    assert!(!text.contains("CHECK"));

    // Case 1: room available (1 employee) — both hire successfully.
    let src_small = named::company_db(1, 1, 1);
    let tgt_small = restructuring.translate(&src_small).unwrap();
    let eq = check_equivalence(
        src_small,
        &program,
        tgt_small,
        report.program.as_ref().unwrap(),
        &Inputs::new(),
        &report.warnings,
    )
    .unwrap();
    assert_eq!(eq.level, EquivalenceLevel::Strict, "{:?}", eq.divergence);
    assert_eq!(eq.original_trace.terminal_lines(), vec!["HIRED"]);

    // Case 2: division full (3 employees) — the source aborts via CHECK,
    // the target aborts via the declarative constraint. Message text
    // differs (program message vs. DBMS message), which the integrity
    // warning predicts: the §5.2 "warned" level.
    let src_full = named::company_db(1, 1, 3);
    let tgt_full = restructuring.translate(&src_full).unwrap();
    let eq = check_equivalence(
        src_full,
        &program,
        tgt_full,
        report.program.as_ref().unwrap(),
        &Inputs::new(),
        &report.warnings,
    )
    .unwrap();
    assert!(eq.original_trace.aborted());
    assert!(eq.converted_trace.aborted());
    assert_ne!(eq.level, EquivalenceLevel::NotEquivalent);
}

/// Declarative → procedural: dropping the characterizing constraint makes
/// the converter insert explicit member deletion — Su's dependent-entity
/// example — and behavior is preserved exactly.
#[test]
fn declarative_to_procedural_cascade_compensation() {
    let schema = named::company_schema().with_constraint(Constraint::Characterizing {
        set: "DIV-EMP".into(),
    });
    let restructuring =
        Restructuring::single(Transform::DropConstraint(Constraint::Characterizing {
            set: "DIV-EMP".into(),
        }));
    let program = parse_program(
        "PROGRAM CLOSE-DIV;
  FIND D := FIND(DIV: SYSTEM, ALL-DIV, DIV(DIV-NAME = 'MACHINERY'));
  DELETE D;
  FIND LEFT := FIND(DIV: SYSTEM, ALL-DIV, DIV);
  PRINT COUNT(LEFT);
END PROGRAM;",
    )
    .unwrap();
    let report = Supervisor::new()
        .convert(&schema, &restructuring, &program, &mut AutoAnalyst)
        .unwrap();
    assert!(report.succeeded(), "{:?}", report.questions);
    let text = report.text.as_ref().unwrap();
    assert!(text.contains("FIND CVT-1 := FIND(EMP: D, DIV-EMP, EMP);"));
    assert!(text.contains("DELETE CVT-1;"));

    // Build the source db under the characterizing schema.
    let mut src = dbpc::storage::NetworkDb::new(schema.clone()).unwrap();
    for (i, name) in ["MACHINERY", "AEROSPACE"].iter().enumerate() {
        let d = src
            .store(
                "DIV",
                &[
                    ("DIV-NAME", dbpc::datamodel::value::Value::str(*name)),
                    (
                        "DIV-LOC",
                        dbpc::datamodel::value::Value::str(format!("CITY-{i}")),
                    ),
                ],
                &[],
            )
            .unwrap();
        for e in 0..3 {
            src.store(
                "EMP",
                &[
                    (
                        "EMP-NAME",
                        dbpc::datamodel::value::Value::str(format!("E-{i}-{e}")),
                    ),
                    ("DEPT-NAME", dbpc::datamodel::value::Value::str("SALES")),
                    ("AGE", dbpc::datamodel::value::Value::Int(30)),
                ],
                &[("DIV-EMP", d)],
            )
            .unwrap();
        }
    }
    let tgt = restructuring.translate(&src).unwrap();
    let eq = check_equivalence(
        src,
        &program,
        tgt,
        report.program.as_ref().unwrap(),
        &Inputs::new(),
        &report.warnings,
    )
    .unwrap();
    assert_eq!(eq.level, EquivalenceLevel::Strict, "{:?}", eq.divergence);
    assert_eq!(eq.original_trace.terminal_lines(), vec!["1"]);
}

/// Without the compensation, the same program simply aborts on the target
/// schema — demonstrating that the inserted statements are load-bearing.
#[test]
fn uncompensated_delete_aborts_on_target() {
    let schema = named::company_schema(); // no characterizing constraint
    let mut db = dbpc::storage::NetworkDb::new(schema).unwrap();
    let d = db
        .store(
            "DIV",
            &[("DIV-NAME", dbpc::datamodel::value::Value::str("M"))],
            &[],
        )
        .unwrap();
    db.store(
        "EMP",
        &[("EMP-NAME", dbpc::datamodel::value::Value::str("X"))],
        &[("DIV-EMP", d)],
    )
    .unwrap();
    let program = parse_program(
        "PROGRAM P;
  FIND D := FIND(DIV: SYSTEM, ALL-DIV, DIV(DIV-NAME = 'M'));
  DELETE D;
  PRINT 'DELETED';
END PROGRAM;",
    )
    .unwrap();
    let trace = run_host(&mut db, &program, Inputs::new()).unwrap();
    assert!(trace.aborted());
}

/// The school database's twice-per-year rule, checked end to end through
/// the engine (the §3.1 worked example).
#[test]
fn school_cardinality_rule_enforced_through_engine() {
    let program = parse_program(
        "PROGRAM OFFER;
  FIND C := FIND(COURSE: SYSTEM, ALL-COURSE, COURSE(CNO = 'C000'));
  FIND S := FIND(SEMESTER: SYSTEM, ALL-SEMESTER, SEMESTER(S = 'S01'));
  STORE COURSE-OFFERING (OFF-ID := 'NEW-1') CONNECT TO COURSES-OFFERING OF C, SEMESTERS-OFFERING OF S;
  PRINT 'FIRST EXTRA OK';
  STORE COURSE-OFFERING (OFF-ID := 'NEW-2') CONNECT TO COURSES-OFFERING OF C, SEMESTERS-OFFERING OF S;
  PRINT 'SECOND EXTRA OK';
END PROGRAM;",
    )
    .unwrap();
    let mut db = named::school_network_db(3, 2).unwrap();
    let trace = run_host(&mut db, &program, Inputs::new()).unwrap();
    // One offering exists already; the first extra is the second offering
    // (allowed), the second extra is the third (rejected).
    assert_eq!(trace.terminal_lines(), vec!["FIRST EXTRA OK"]);
    assert!(trace.aborted());
}

/// §5.2's own example of an intended behavior change: employees could be
/// stored without a division; the restructured schema requires one. The
/// converted insert program fails where the original succeeded — "the
/// desired behavior because the application requirements have changed, but
/// it is not strictly equivalent": the Warned level.
#[test]
fn section_5_2_insert_behavior_change_is_warned() {
    use dbpc::convert::report::PermissiveAnalyst;
    use dbpc::datamodel::network::Insertion;

    let mut schema = named::company_schema();
    schema.set_mut("DIV-EMP").unwrap().insertion = Insertion::Manual;
    let restructuring = Restructuring::single(Transform::ChangeInsertion {
        set: "DIV-EMP".into(),
        insertion: Insertion::Automatic,
    });
    // The legacy program stores a floating employee (legal while MANUAL).
    let program = parse_program(
        "PROGRAM ONBOARD;
  STORE EMP (EMP-NAME := 'FLOATER', DEPT-NAME := 'ENG', AGE := 30);
  PRINT 'STORED';
END PROGRAM;",
    )
    .unwrap();
    // The supervisor asks; the analyst approves the new requirement.
    let report = Supervisor::new()
        .convert(&schema, &restructuring, &program, &mut PermissiveAnalyst)
        .unwrap();
    assert!(report.succeeded(), "verdict {:?}", report.verdict);
    assert!(report
        .warnings
        .iter()
        .any(|w| matches!(w, Warning::IntegrityTightened { .. })));

    let src = dbpc::storage::NetworkDb::new(schema.clone()).unwrap();
    let tgt = restructuring.translate(&src).unwrap();
    let eq = check_equivalence(
        src,
        &program,
        tgt,
        report.program.as_ref().unwrap(),
        &Inputs::new(),
        &report.warnings,
    )
    .unwrap();
    // Original stores the floater; the converted run aborts — predicted.
    assert_eq!(eq.original_trace.terminal_lines(), vec!["STORED"]);
    assert!(eq.converted_trace.aborted());
    assert_eq!(eq.level, EquivalenceLevel::Warned);
}
