//! Serial equivalence of the concurrent conversion service.
//!
//! The acceptance bar for every concurrency feature in this repo:
//! parallelism changes *when* a job runs, never *what* it produces. For
//! the conversion service that means a queue of mixed read-only and
//! mutating jobs, executed by any number of workers from any number of
//! sessions, must publish `(report, level)` pairs byte-identical to the
//! same jobs executed inline, in admission order, by
//! [`ServiceBuilder::run_serial`] — the lock table may reorder execution,
//! the savepoint discipline guarantees it cannot change outcomes.

use dbpc::convert::equivalence::EquivalenceLevel;
use dbpc::convert::report::Verdict;
use dbpc::convert::service::{
    CtxId, JobOutcome, RetryPolicy, ServiceBuilder, ServiceConfig, Ticket,
};
use dbpc::convert::{FaultPlan, Supervisor};
use dbpc::corpus::gen::{generate_program, ProgramClass, TransformClass};
use dbpc::corpus::named;
use dbpc::dml::host::Program;
use dbpc::engine::Inputs;
use dbpc::storage::locks::{LOCKS_EXCLUSIVE, LOCKS_SHARED, LOCKS_TIMEOUTS};
use proptest::prelude::*;
use std::time::Duration;

/// Mixed job list: read-heavy with a mutating tail, the service's design
/// workload (80/20 in the bench; denser mutation here to stress locking).
fn mixed_jobs(n: usize, seed: u64) -> Vec<(CtxId, Program, u64)> {
    let classes = ProgramClass::ALL;
    (0..n)
        .map(|i| {
            let class = classes[(seed as usize + i * 5) % classes.len()];
            let key = seed.wrapping_mul(1979).wrapping_add(i as u64);
            (0usize, generate_program(class, key), key)
        })
        .collect()
}

fn company_builder(config: ServiceConfig) -> (ServiceBuilder, CtxId) {
    let mut b = ServiceBuilder::new(config);
    let ctx = b
        .register_context(
            &named::company_schema(),
            &named::fig_4_4_restructuring(),
            named::company_db(2, 2, 6),
            Inputs::new().with_terminal(&["RETRIEVE"]),
        )
        .unwrap();
    (b, ctx)
}

fn run_concurrent(config: ServiceConfig, jobs: &[(CtxId, Program, u64)]) -> Vec<JobOutcome> {
    let (b, _) = company_builder(config);
    let svc = b.start();
    let session = svc.session();
    let tickets: Vec<Ticket> = jobs
        .iter()
        .map(|(c, p, k)| session.submit(*c, p.clone(), *k).unwrap())
        .collect();
    tickets.into_iter().map(Ticket::wait).collect()
}

fn assert_outcomes_identical(serial: &[JobOutcome], concurrent: &[JobOutcome]) {
    assert_eq!(serial.len(), concurrent.len());
    for (s, c) in serial.iter().zip(concurrent) {
        assert_eq!(s.report, c.report, "report differs at seq {}", s.seq);
        assert_eq!(s.level, c.level, "level differs at seq {}", s.seq);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// N concurrent jobs over the full program-class mix — reports and
    /// equivalence levels byte-identical to the serial reference, at a
    /// random worker count and queue bound.
    #[test]
    fn concurrent_sessions_match_serial(seed in 0u64..1000, workers in 2usize..6, cap in 1usize..5) {
        let jobs = mixed_jobs(14, seed);
        let config = ServiceConfig {
            workers,
            queue_capacity: cap,
            ..ServiceConfig::default()
        };
        let (reference, _) = company_builder(config.clone());
        let serial = reference.run_serial(&jobs).unwrap();
        let concurrent = run_concurrent(config, &jobs);
        assert_outcomes_identical(&serial, &concurrent);
        // Nothing may crash a worker: concurrency bugs here would surface
        // as poisoned verdicts before they surface as wrong answers.
        for out in &concurrent {
            prop_assert!(out.report.verdict != Verdict::Poisoned, "{:?}", out.report);
        }
    }
}

/// Jobs from several sessions interleave arbitrarily (each session
/// submits from its own thread) and still match the per-job serial
/// reference: outcomes are a function of the job, not the session or the
/// interleaving.
#[test]
fn interleaved_sessions_match_per_job_reference() {
    const SESSIONS: usize = 4;
    const PER_SESSION: usize = 6;
    let config = ServiceConfig {
        workers: 3,
        queue_capacity: 4,
        ..ServiceConfig::default()
    };
    let (reference, _) = company_builder(config.clone());
    let session_jobs: Vec<Vec<(CtxId, Program, u64)>> = (0..SESSIONS)
        .map(|s| mixed_jobs(PER_SESSION, 7000 + s as u64))
        .collect();
    let serial: Vec<Vec<JobOutcome>> = session_jobs
        .iter()
        .map(|jobs| reference.run_serial(jobs).unwrap())
        .collect();

    let (b, _) = company_builder(config);
    let svc = b.start();
    let outcomes: Vec<Vec<JobOutcome>> = std::thread::scope(|scope| {
        let handles: Vec<_> = session_jobs
            .iter()
            .map(|jobs| {
                let session = svc.session();
                scope.spawn(move || {
                    let tickets: Vec<Ticket> = jobs
                        .iter()
                        .map(|(c, p, k)| session.submit(*c, p.clone(), *k).unwrap())
                        .collect();
                    tickets.into_iter().map(Ticket::wait).collect::<Vec<_>>()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let report = svc.shutdown();
    for (serial, concurrent) in serial.iter().zip(&outcomes) {
        for (s, c) in serial.iter().zip(concurrent) {
            assert_eq!(s.report, c.report);
            assert_eq!(s.level, c.level);
        }
    }
    // The mix contains mutating classes, so exclusive locks were taken —
    // and the mutating classes' record-type serialization never timed out
    // under the default (generous) wait budget.
    assert!(report.metrics.counter(LOCKS_EXCLUSIVE) > 0);
    assert_eq!(report.metrics.counter(LOCKS_TIMEOUTS), 0);
}

/// Two independently restructured contexts share the service, the queue,
/// and the lock table, but not lock resources: jobs against one context
/// never contend with the other's, and both match their serial references.
#[test]
fn contexts_are_isolated_lock_domains() {
    let mut b = ServiceBuilder::new(ServiceConfig {
        workers: 3,
        ..ServiceConfig::default()
    });
    let promote = b
        .register_context(
            &named::company_schema(),
            &named::fig_4_4_restructuring(),
            named::company_db(2, 2, 5),
            Inputs::new().with_terminal(&["RETRIEVE"]),
        )
        .unwrap();
    let rename = b
        .register_context(
            &named::company_schema(),
            &TransformClass::ALL[0].restructuring(),
            named::company_db(2, 2, 5),
            Inputs::new().with_terminal(&["RETRIEVE"]),
        )
        .unwrap();
    let jobs: Vec<(CtxId, Program, u64)> = (0..12u64)
        .map(|k| {
            let ctx = if k % 2 == 0 { promote } else { rename };
            let class = ProgramClass::ALL[(k as usize) % ProgramClass::ALL.len()];
            (ctx, generate_program(class, 4242 + k), k)
        })
        .collect();
    let serial = b.run_serial(&jobs).unwrap();
    let svc = b.start();
    let session = svc.session();
    let tickets: Vec<Ticket> = jobs
        .iter()
        .map(|(c, p, k)| session.submit(*c, p.clone(), *k).unwrap())
        .collect();
    let concurrent: Vec<JobOutcome> = tickets.into_iter().map(Ticket::wait).collect();
    drop(svc);
    assert_outcomes_identical(&serial, &concurrent);
}

/// Satellite 1 end to end: a workload of update-free programs takes zero
/// exclusive locks — the read-read fast path — while still verifying
/// every job strictly.
#[test]
fn read_only_workload_never_locks_exclusively() {
    let read_only = [
        ProgramClass::PlainReport,
        ProgramClass::SortedReport,
        ProgramClass::AggregateOnly,
        ProgramClass::DeptFiltered,
        ProgramClass::DeptPrinted,
        ProgramClass::VirtualRef,
    ];
    let (b, ctx) = company_builder(ServiceConfig {
        workers: 4,
        ..ServiceConfig::default()
    });
    let svc = b.start();
    let session = svc.session();
    let tickets: Vec<Ticket> = (0..18u64)
        .map(|k| {
            let class = read_only[(k as usize) % read_only.len()];
            session
                .submit(ctx, generate_program(class, 100 + k), k)
                .unwrap()
        })
        .collect();
    let mut verified = 0usize;
    for t in tickets {
        let out = t.wait();
        // A job either converts and verifies (read-read path) or the
        // analyst rejects it (e.g. a migrated-field question under the
        // promotion) — in which case it takes no locks at all.
        match out.level {
            Some(EquivalenceLevel::Strict) | Some(EquivalenceLevel::Warned) => verified += 1,
            _ => assert_eq!(out.report.verdict, Verdict::Rejected, "{:?}", out.report),
        }
    }
    assert!(verified >= 12, "only {verified} of 18 jobs verified");
    let report = svc.shutdown();
    assert_eq!(report.metrics.counter(LOCKS_EXCLUSIVE), 0);
    assert!(report.metrics.counter(LOCKS_SHARED) > 0);
}

/// Injected verification faults degrade the victim job deterministically —
/// same verdicts serial or concurrent, and no fault ever wedges a worker
/// or leaks a lock (the run drains to completion).
#[test]
fn injected_faults_degrade_identically_under_concurrency() {
    let config = ServiceConfig {
        workers: 3,
        supervisor: Supervisor {
            fault: FaultPlan::seeded(0xFA17, 0.3),
            ..Supervisor::default()
        },
        ..ServiceConfig::default()
    };
    let jobs = mixed_jobs(12, 31979);
    let (reference, _) = company_builder(config.clone());
    let serial = reference.run_serial(&jobs).unwrap();
    let concurrent = run_concurrent(config, &jobs);
    assert_outcomes_identical(&serial, &concurrent);
}

/// A starved lock wait degrades the job (needs-manual-work with the
/// timeout on record) rather than failing the run — and a serial run of
/// the same jobs, where contention is impossible, is the uncontended
/// baseline the degraded report must otherwise match.
#[test]
fn pathological_timeout_budget_degrades_but_completes() {
    // A zero wait budget times out whenever two mutating jobs collide; with
    // one worker there is no collision, so outcomes match serial even at
    // the pathological setting.
    let config = ServiceConfig {
        workers: 1,
        lock_timeout: Duration::from_millis(0),
        retry: RetryPolicy {
            retries: 0,
            ..RetryPolicy::default()
        },
        ..ServiceConfig::default()
    };
    let jobs = mixed_jobs(8, 555);
    let (reference, _) = company_builder(config.clone());
    let serial = reference.run_serial(&jobs).unwrap();
    let concurrent = run_concurrent(config, &jobs);
    assert_outcomes_identical(&serial, &concurrent);
}
