//! SEQUEL update statements with nested `IN` predicates, run through the
//! relational engine — the update side of the §4.1 dialect.

use dbpc::corpus::named;
use dbpc::dml::sequel::parse_sequel_program;
use dbpc::engine::sequel_exec::run_sequel;
use dbpc::engine::Inputs;

#[test]
fn delete_with_nested_in_prunes_the_right_rows() {
    let mut db = named::personnel_relational_db(4, 5).unwrap();
    // Remove the association rows of everyone in SMITH's department, then
    // show who is left associated.
    let p = parse_sequel_program(
        "SEQUEL PROGRAM PURGE;
DELETE FROM EMP-DEPT WHERE D# IN (SELECT D# FROM DEPT WHERE MGR = 'SMITH');
SELECT D#
FROM DEPT
WHERE D# IN
SELECT D#
FROM EMP-DEPT
WHERE YEAR-OF-SERVICE >= 0;
END PROGRAM;",
    )
    .unwrap();
    let t = run_sequel(&mut db, &p, Inputs::new()).unwrap();
    // D2 (SMITH's) no longer appears among associated departments.
    assert!(!t.terminal_lines().contains(&"D2"));
    assert_eq!(t.terminal_lines().len(), 3);
    assert_eq!(db.row_count("EMP-DEPT").unwrap(), 15);
}

#[test]
fn update_with_nested_in_touches_only_matches() {
    let mut db = named::personnel_relational_db(3, 4).unwrap();
    let p = parse_sequel_program(
        "SEQUEL PROGRAM RAISE;
UPDATE EMP-DEPT SET (YEAR-OF-SERVICE = 99)
  WHERE E# IN (SELECT E# FROM EMP WHERE AGE > 40);
SELECT E#
FROM EMP-DEPT
WHERE YEAR-OF-SERVICE = 99;
END PROGRAM;",
    )
    .unwrap();
    let t = run_sequel(&mut db, &p, Inputs::new()).unwrap();
    // Exactly the over-40 employees got the marker.
    let expected: usize = {
        let mut db2 = named::personnel_relational_db(3, 4).unwrap();
        let q = parse_sequel_program(
            "SEQUEL PROGRAM COUNT;
SELECT E#
FROM EMP
WHERE AGE > 40;
END PROGRAM;",
        )
        .unwrap();
        run_sequel(&mut db2, &q, Inputs::new())
            .unwrap()
            .terminal_lines()
            .len()
    };
    assert_eq!(t.terminal_lines().len(), expected);
    assert!(expected > 0);
}

#[test]
fn or_and_not_predicates_evaluate() {
    let mut db = named::personnel_relational_db(2, 3).unwrap();
    let p = parse_sequel_program(
        "SEQUEL PROGRAM LOGIC;
SELECT ENAME
FROM EMP
WHERE (AGE < 25 OR AGE > 40) AND NOT (E# = 'E0000');
END PROGRAM;",
    )
    .unwrap();
    let t = run_sequel(&mut db, &p, Inputs::new()).unwrap();
    assert!(!t.terminal_lines().contains(&"NAME-0000"));
}
