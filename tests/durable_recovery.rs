//! Experiment E20: restart-across-process crash recovery.
//!
//! E16 proved crash recovery *within* one process — a checkpoint resumed
//! by the same address space that took it. This matrix removes that
//! comfort: a child process (`src/bin/durability_crash.rs`) is killed
//! for real (`exit(9)`, no unwinding, no destructors) at every commit
//! boundary of a churn workload and at every WAL batch boundary of a
//! mid-flight translation, and a *fresh* process must recover engine and
//! `StatCatalog` fingerprints byte-identical to the committed prefix —
//! including when the crash itself was a torn write, a short write, or a
//! failed fsync planted by the deterministic disk-fault injector. Every
//! cell is also fanned over 1, 2, and 8 worker threads, which must not
//! change a single fingerprint.

use dbpc::corpus::named;
use dbpc::datamodel::value::Value;
use dbpc::obs::metrics::{local_snapshot, MetricsRegistry};
use dbpc::obs::RunReport;
use dbpc::restructure::translate_batched;
use dbpc::storage::{pool, DurableNetworkDb, DurableOptions, StatCatalog, SyncPolicy, TempDir};
use std::path::Path;
use std::process::{Command, Output};

const BIN: &str = env!("CARGO_BIN_EXE_durability_crash");
const EXIT_FAULT: i32 = 3;
const EXIT_KILLED: i32 = 9;

fn run(args: &[&str]) -> Output {
    Command::new(BIN)
        .args(args)
        .output()
        .unwrap_or_else(|e| panic!("spawning {BIN} {args:?}: {e}"))
}

/// Run the harness expecting a clean exit; parse its
/// `<engine-fp> <stat-fp> <n>` report line.
fn run_ok(args: &[&str]) -> (u64, u64, u64) {
    let out = run(args);
    assert!(
        out.status.success(),
        "{args:?} failed ({:?}): {}",
        out.status.code(),
        String::from_utf8_lossy(&out.stderr)
    );
    let line = String::from_utf8_lossy(&out.stdout);
    let mut parts = line.split_whitespace();
    let mut next = |radix| {
        u64::from_str_radix(
            parts.next().unwrap_or_else(|| panic!("bad report: {line}")),
            radix,
        )
        .unwrap_or_else(|e| panic!("bad report {line}: {e}"))
    };
    (next(16), next(16), next(10))
}

/// Run the harness expecting it to die with `code`.
fn run_dies(args: &[&str], code: i32) {
    let out = run(args);
    assert_eq!(
        out.status.code(),
        Some(code),
        "{args:?} exited {:?}, wanted {code}: {}",
        out.status.code(),
        String::from_utf8_lossy(&out.stderr)
    );
}

fn path_str(p: &Path) -> &str {
    p.to_str().unwrap()
}

/// Kill the engine child after every single commit of a churn workload;
/// a fresh process must recover exactly the state an in-memory replay of
/// that committed prefix produces — engine and statistics fingerprints
/// both. The whole matrix fans over 1, 2, and 8 threads without any
/// fingerprint moving.
#[test]
fn engine_killed_at_every_commit_recovers_the_committed_prefix() {
    const OPS: usize = 12;
    let cells: Vec<usize> = (1..=OPS).collect();
    let run_cell = |&kill: &usize| {
        let dir = TempDir::new(&format!("e20-engine-{kill}")).unwrap();
        let root = path_str(dir.path());
        run_dies(
            &["engine", root, &OPS.to_string(), &kill.to_string()],
            EXIT_KILLED,
        );
        let recovered = run_ok(&["probe", root]);
        let expected = run_ok(&["expect", &kill.to_string()]);
        assert_eq!(
            (recovered.0, recovered.1),
            (expected.0, expected.1),
            "kill after commit {kill}: recovered state drifted from the committed prefix"
        );
        (recovered.0, recovered.1)
    };
    let reference: Vec<(u64, u64)> = cells.iter().map(run_cell).collect();
    for threads in [1, 2, 8] {
        let got = pool::parallel_map(&cells, threads, |_, cell| run_cell(cell));
        assert_eq!(got, reference, "matrix changed at {threads} threads");
    }

    // The uncrashed child agrees with the full in-memory replay, and a
    // second probe of its directory is a no-op (idempotent recovery).
    let dir = TempDir::new("e20-engine-clean").unwrap();
    let root = path_str(dir.path());
    let clean = run_ok(&["engine", root, &OPS.to_string(), "none"]);
    let expected = run_ok(&["expect", &OPS.to_string()]);
    assert_eq!((clean.0, clean.1), (expected.0, expected.1));
    let probe1 = run_ok(&["probe", root]);
    let probe2 = run_ok(&["probe", root]);
    assert_eq!((probe1.0, probe1.1), (clean.0, clean.1));
    assert_eq!(probe1, probe2, "second recovery differed from the first");
}

/// Reference fingerprints for the translation matrix: the uncrashed
/// in-process translation of the corpus company database under the
/// paper's Figure 4.2 → 4.4 promotion, plus the number of WAL batch
/// boundaries a batch-3 run consults (= the kill points to cover).
fn translation_reference() -> (u64, u64, usize) {
    let src = named::company_db(4, 3, 8);
    let transform = named::fig_4_4_restructuring().transforms[0].clone();
    let mut boundaries = 0usize;
    let out = match translate_batched(&src, &transform, 3, &mut |_| {
        boundaries += 1;
        false
    })
    .unwrap()
    {
        dbpc::restructure::BatchedOutcome::Complete(out) => out,
        dbpc::restructure::BatchedOutcome::Crashed(_) => unreachable!("never-crash plan crashed"),
    };
    out.check_access_structures().unwrap();
    (
        out.fingerprint(),
        StatCatalog::of_network(&out).fingerprint(),
        boundaries,
    )
}

/// Kill the translation child at every WAL batch boundary; a fresh
/// process over the same directory must replay exactly the batches that
/// were durable at the kill and finish byte-identical to the uncrashed
/// translation. Fanned over 1, 2, and 8 threads.
#[test]
fn translation_killed_at_every_wal_boundary_recovers_byte_identical() {
    let (want_fp, want_stat, boundaries) = translation_reference();
    assert!(
        boundaries >= 6,
        "only {boundaries} boundaries — batch too coarse"
    );

    let cells: Vec<usize> = (0..boundaries).collect();
    let run_cell = |&kill: &usize| {
        let dir = TempDir::new(&format!("e20-xlate-{kill}")).unwrap();
        let root = path_str(dir.path());
        run_dies(&["translate", root, &kill.to_string()], EXIT_KILLED);
        let (fp, stat, replayed) = run_ok(&["translate", root, "none"]);
        assert_eq!(
            fp, want_fp,
            "kill at boundary {kill}: output fingerprint drifted"
        );
        assert_eq!(
            stat, want_stat,
            "kill at boundary {kill}: statistics drifted"
        );
        // Boundary `kill` fires after its batch was journaled, so the
        // fresh process must find exactly `kill + 1` batches durable.
        assert_eq!(
            replayed as usize,
            kill + 1,
            "kill at boundary {kill}: wrong replay depth"
        );
        (fp, stat, replayed)
    };
    let reference: Vec<(u64, u64, u64)> = cells.iter().map(run_cell).collect();
    for threads in [1, 2, 8] {
        let got = pool::parallel_map(&cells, threads, |_, cell| run_cell(cell));
        assert_eq!(got, reference, "matrix changed at {threads} threads");
    }

    // Unkilled child on a fresh directory: nothing to replay, same bytes.
    let dir = TempDir::new("e20-xlate-clean").unwrap();
    let (fp, stat, replayed) = run_ok(&["translate", path_str(dir.path()), "none"]);
    assert_eq!((fp, stat, replayed), (want_fp, want_stat, 0));
}

/// Crash the heap-backed engine *inside* its checkpoints: with 256-byte
/// pages and a 4-frame pool, a positional torn write, short write, or
/// failed fsync lands on undo pre-image writes, heap page flushes, WAL
/// rolls, and manifest flips. Wherever the fault fires the child dies
/// with no cleanup after printing how many commits it had acknowledged;
/// a fault-free probe must recover exactly that committed prefix —
/// engine and statistics fingerprints both — and the whole matrix must
/// not move across 1, 2, and 8 worker threads.
#[test]
fn heap_checkpoint_faults_recover_the_acknowledged_prefix() {
    const OPS: usize = 16;
    // Committed-prefix reference fingerprints, indexed by commit count.
    let expect: Vec<(u64, u64)> = (0..=OPS)
        .map(|k| {
            let (fp, stat, _) = run_ok(&["expect", &k.to_string()]);
            (fp, stat)
        })
        .collect();
    let cells: Vec<(String, u64)> = ["torn", "short", "fsync"]
        .iter()
        .flat_map(|kind| (1..60).step_by(4).map(move |op| (kind.to_string(), op)))
        .collect();
    let run_cell = |(kind, op): &(String, u64)| {
        let spec = format!("{kind}:{op}");
        let dir = TempDir::new(&format!("e20-ckpt-{kind}-{op}")).unwrap();
        let root = path_str(dir.path());
        let out = run(&["ckpt", root, &OPS.to_string(), &spec]);
        match out.status.code() {
            // The fault fired mid-I/O and the child died with no cleanup.
            // Recovery must land on a committed prefix — never a torn or
            // invented state. A failed fsync corrupts no bytes (and any
            // flushed heap page is rolled back from its pre-image), so
            // those cells must recover *exactly* the acknowledged
            // prefix; a torn/short write may additionally have damaged
            // acknowledged WAL records sharing the tail page, so there
            // the bar is prefix integrity, not prefix completeness.
            Some(EXIT_FAULT) => {
                let acked: usize = String::from_utf8_lossy(&out.stdout)
                    .trim()
                    .parse()
                    .unwrap_or_else(|e| panic!("{spec}: bad acked count: {e}"));
                let (fp, stat, _) = run_ok(&["probe", root, "small"]);
                if kind == "fsync" {
                    assert_eq!(
                        (fp, stat),
                        expect[acked],
                        "{spec}: recovery drifted from the {acked}-commit prefix"
                    );
                } else {
                    // One commit was in flight when the write tore; its
                    // outcome is legitimately unknown (fully logged →
                    // replayed, truncated → dropped), so the prefix may
                    // extend one past the acknowledged count.
                    assert!(
                        expect[..=(acked + 1).min(OPS)].contains(&(fp, stat)),
                        "{spec}: recovered state is not a committed prefix \
                         (acked {acked})"
                    );
                }
                (fp, stat, true)
            }
            // Inert cell: the fault index was never reached — the run
            // must already be byte-identical to the in-memory replay.
            Some(0) => {
                let line = String::from_utf8_lossy(&out.stdout);
                let fp = u64::from_str_radix(line.split_whitespace().next().unwrap(), 16).unwrap();
                assert_eq!(fp, expect[OPS].0, "{spec}: inert fault changed the outcome");
                (fp, expect[OPS].1, false)
            }
            code => panic!(
                "{spec}: unexpected exit {code:?}: {}",
                String::from_utf8_lossy(&out.stderr)
            ),
        }
    };
    let reference: Vec<(u64, u64, bool)> = cells.iter().map(run_cell).collect();
    let fired = reference.iter().filter(|r| r.2).count();
    assert!(
        fired >= 6,
        "only {fired} checkpoint-fault cells fired — matrix too sparse"
    );
    for threads in [1, 2, 8] {
        let got = pool::parallel_map(&cells, threads, |_, cell| run_cell(cell));
        assert_eq!(got, reference, "ckpt matrix changed at {threads} threads");
    }
}

/// The durable substrate's physical counters flow through the ambient
/// observability layer: a `RunReport` assembled from the thread-local
/// metrics delta of one durable session reports the WAL, disk, and
/// buffer-pool work that session did.
#[test]
fn durable_io_counters_flow_into_run_reports() {
    let dir = TempDir::new("e20-obs-report").unwrap();
    let opts = DurableOptions {
        page_size: 256,
        sync: SyncPolicy::Os,
        ..DurableOptions::default()
    };
    let before = local_snapshot();

    let mut db = DurableNetworkDb::open(dir.path(), named::company_schema(), opts.clone()).unwrap();
    let sp = db.begin_savepoint();
    let div = db
        .store(
            "DIV",
            &[
                ("DIV-NAME", Value::str("OBS")),
                ("DIV-LOC", Value::str("IO")),
            ],
            &[],
        )
        .unwrap();
    db.store(
        "EMP",
        &[
            ("EMP-NAME", Value::str("PROBE")),
            ("DEPT-NAME", Value::str("D0")),
            ("AGE", Value::Int(30)),
        ],
        &[("DIV-EMP", div)],
    )
    .unwrap();
    db.commit(sp).unwrap();
    // Checkpoint + reopen drive the snapshot path through the buffer pool
    // and the recovery scan through the log manager.
    db.checkpoint(b"obs").unwrap();
    drop(db);
    let db = DurableNetworkDb::open(dir.path(), named::company_schema(), opts).unwrap();
    assert_eq!(db.engine().record_count(), 2);
    drop(db);

    let mut registry = MetricsRegistry::new();
    registry.absorb(&local_snapshot().since(&before));
    let report = RunReport::assemble("durable-io", vec![], registry);
    for name in [
        "wal.appends",
        "wal.flushes",
        "disk.writes",
        "disk.reads",
        "buffer.pins",
    ] {
        assert!(
            report.metrics.counter(name) > 0,
            "counter {name} missing from the assembled run report"
        );
    }
}

/// The crash need not be a clean kill: plant each fault kind — torn
/// write, short write, failed fsync — at a spread of physical op
/// indices. Wherever the fault fires the child dies mid-write; recovery
/// without the fault must still complete byte-identical to the
/// uncrashed translation. Inert indices (fault aimed at an op that
/// never happens or of the wrong kind) must leave the run unaffected.
#[test]
fn translation_survives_torn_short_and_fsync_faults() {
    let (want_fp, want_stat, _) = translation_reference();
    for kind in ["torn", "short", "fsync"] {
        let mut fired = 0usize;
        for op in (1..40).step_by(3) {
            let dir = TempDir::new(&format!("e20-fault-{kind}-{op}")).unwrap();
            let root = path_str(dir.path());
            let spec = format!("{kind}:{op}");
            let out = run(&["translate", root, "none", &spec]);
            match out.status.code() {
                // The fault fired and surfaced mid-run; a fresh fault-free
                // process must recover and complete exactly.
                Some(EXIT_FAULT) => {
                    fired += 1;
                    let (fp, stat, _) = run_ok(&["translate", root, "none"]);
                    assert_eq!(fp, want_fp, "{spec}: recovery after fault drifted");
                    assert_eq!(stat, want_stat, "{spec}: statistics drifted after fault");
                }
                // Inert cell: the uninjured run must already be exact.
                Some(0) => {
                    let line = String::from_utf8_lossy(&out.stdout);
                    let fp =
                        u64::from_str_radix(line.split_whitespace().next().unwrap(), 16).unwrap();
                    assert_eq!(fp, want_fp, "{spec}: inert fault changed the output");
                }
                code => panic!(
                    "{spec}: unexpected exit {code:?}: {}",
                    String::from_utf8_lossy(&out.stderr)
                ),
            }
        }
        assert!(
            fired >= 2,
            "{kind}: only {fired} probed indices fired — matrix too sparse"
        );
    }
}
