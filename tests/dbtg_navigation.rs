//! DBTG navigation details: system-set scans, currency after updates, and
//! the full listing-B program against the corpus personnel database.

use dbpc::corpus::named;
use dbpc::dml::dbtg::parse_dbtg;
use dbpc::engine::dbtg_exec::run_dbtg;
use dbpc::engine::Inputs;

/// Scan a system-owned set front to back: FIND FIRST / FIND NEXT over
/// ALL-DEPT.
#[test]
fn system_set_scan_visits_all_owners() {
    let mut db = named::personnel_network_db(4, 2).unwrap();
    let p = parse_dbtg(
        "DBTG PROGRAM SCAN.
  FIND FIRST DEPT WITHIN ALL-DEPT.
  IF STATUS ENDSET GO TO DONE.
  GET DEPT.
  PRINT DEPT.D#.
LOOP.
  FIND NEXT DEPT WITHIN ALL-DEPT.
  IF STATUS ENDSET GO TO DONE.
  GET DEPT.
  PRINT DEPT.D#.
  GO TO LOOP.
DONE.
  STOP.
END PROGRAM.",
    )
    .unwrap();
    let t = run_dbtg(&mut db, &p, Inputs::new()).unwrap();
    assert_eq!(t.terminal_lines(), vec!["D0", "D1", "D2", "D3"]);
}

/// Nested navigation: for each department, walk its employees — two
/// interleaved currencies.
#[test]
fn nested_set_scan_with_owner_currency() {
    let mut db = named::personnel_network_db(2, 2).unwrap();
    let p = parse_dbtg(
        "DBTG PROGRAM NEST.
  FIND FIRST DEPT WITHIN ALL-DEPT.
DEPT-LOOP.
  IF STATUS ENDSET GO TO DONE.
  GET DEPT.
  PRINT 'DEPT', DEPT.D#.
EMP-LOOP.
  FIND NEXT EMP WITHIN ED.
  IF STATUS ENDSET GO TO NEXT-DEPT.
  GET EMP.
  PRINT EMP.E#.
  GO TO EMP-LOOP.
NEXT-DEPT.
  FIND NEXT DEPT WITHIN ALL-DEPT.
  GO TO DEPT-LOOP.
DONE.
  STOP.
END PROGRAM.",
    )
    .unwrap();
    let t = run_dbtg(&mut db, &p, Inputs::new()).unwrap();
    assert_eq!(
        t.terminal_lines(),
        vec!["DEPT D0", "E0000", "E0001", "DEPT D1", "E0002", "E0003"]
    );
}

/// ERASE invalidates currency: a GET after erasing the current record
/// reports no currency rather than resurrecting the ghost.
#[test]
fn erase_invalidates_currency() {
    let mut db = named::personnel_network_db(1, 2).unwrap();
    let p = parse_dbtg(
        "DBTG PROGRAM E.
  MOVE 'E0000' TO E# IN EMP.
  FIND ANY EMP USING E#.
  ERASE EMP.
  GET EMP.
  IF STATUS NOCURRENCY GO TO GOOD.
  PRINT 'GHOST'.
  GO TO DONE.
GOOD.
  PRINT 'CURRENCY GONE'.
DONE.
  STOP.
END PROGRAM.",
    )
    .unwrap();
    let t = run_dbtg(&mut db, &p, Inputs::new()).unwrap();
    assert_eq!(t.terminal_lines(), vec!["CURRENCY GONE"]);
}

/// UWA survives across FINDs: MOVE once, probe several departments.
#[test]
fn uwa_is_persistent_state() {
    let mut db = named::personnel_network_db(3, 1).unwrap();
    let p = parse_dbtg(
        "DBTG PROGRAM U.
  MOVE 'D1' TO D# IN DEPT.
  FIND ANY DEPT USING D#.
  GET DEPT.
  PRINT DEPT.DNAME.
  MOVE 'D2' TO D# IN DEPT.
  FIND ANY DEPT USING D#.
  GET DEPT.
  PRINT DEPT.DNAME.
  STOP.
END PROGRAM.",
    )
    .unwrap();
    let t = run_dbtg(&mut db, &p, Inputs::new()).unwrap();
    assert_eq!(t.terminal_lines(), vec!["DEPT-01", "DEPT-02"]);
}

/// The corpus personnel database serves the paper's listing (B) at scale.
#[test]
fn listing_b_at_scale() {
    let mut db = named::personnel_network_db(6, 30).unwrap();
    let p = parse_dbtg(
        "DBTG PROGRAM GETEMP.
  MOVE 'D2' TO D# IN DEPT.
  FIND ANY DEPT USING D#.
  IF STATUS NOTFOUND GO TO FINISH.
  MOVE 3 TO YEAR-OF-SERVICE IN EMP.
NEXT.
  FIND NEXT EMP WITHIN ED USING YEAR-OF-SERVICE.
  IF STATUS ENDSET GO TO FINISH.
  GET EMP.
  PRINT EMP.ENAME.
  GO TO NEXT.
FINISH.
  STOP.
END PROGRAM.",
    )
    .unwrap();
    let t = run_dbtg(&mut db, &p, Inputs::new()).unwrap();
    // D2 holds employees 60..89; YEAR-OF-SERVICE = emp_no % 5 == 3.
    assert_eq!(t.terminal_lines().len(), 6);
    assert!(t.terminal_lines().contains(&"NAME-0063"));
}
