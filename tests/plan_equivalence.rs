//! Plan equivalence: the cost-based planner may pick any access path it
//! likes, but it must never change what a program *does*. Random programs
//! on all engines produce traces byte-identical under `CostBased`,
//! `ForceScan` (the seed executors' only strategy), and `AlwaysProbe` —
//! and the full E2 study matrix is invariant to both the plan mode and
//! the worker thread count (1 / 2 / 8).
//!
//! `PlanMode` is process-global, so every test that switches it holds one
//! mutex and restores the previous mode before releasing it.

use dbpc::corpus::gen::{generate_program, ProgramClass};
use dbpc::corpus::harness::{success_rate_study_config, StudyConfig};
use dbpc::corpus::named;
use dbpc::datamodel::hierarchical::{HierSchema, SegmentDef};
use dbpc::datamodel::network::FieldDef;
use dbpc::datamodel::types::FieldType;
use dbpc::datamodel::value::Value;
use dbpc::dml::dbtg::parse_dbtg;
use dbpc::dml::dli::parse_dli;
use dbpc::dml::sequel::parse_sequel_program;
use dbpc::engine::dbtg_exec::run_dbtg;
use dbpc::engine::dli_exec::run_dli;
use dbpc::engine::host_exec::run_host;
use dbpc::engine::scan::{set_plan_mode, PlanMode};
use dbpc::engine::sequel_exec::run_sequel;
use dbpc::engine::{Inputs, Trace};
use dbpc::storage::HierDb;
use proptest::prelude::*;
use std::sync::Mutex;

/// Guards the process-global plan mode; tests in this binary run in
/// parallel and must not observe each other's overrides.
static PLAN_MODE: Mutex<()> = Mutex::new(());

const MODES: [PlanMode; 3] = [
    PlanMode::CostBased,
    PlanMode::ForceScan,
    PlanMode::AlwaysProbe,
];

/// Run `f` once per plan mode (fresh inputs each time — programs may
/// mutate their database) and return the three traces.
fn traces_per_mode(mut f: impl FnMut() -> Trace) -> Vec<(PlanMode, Trace)> {
    let _guard = PLAN_MODE.lock().unwrap_or_else(|e| e.into_inner());
    MODES
        .iter()
        .map(|&mode| {
            let prev = set_plan_mode(mode);
            let trace = f();
            set_plan_mode(prev);
            (mode, trace)
        })
        .collect()
}

fn assert_all_identical(traces: &[(PlanMode, Trace)], what: &str) {
    let (m0, t0) = &traces[0];
    for (m, t) in &traces[1..] {
        assert_eq!(
            t0, t,
            "{what}: trace under {m0:?} differs from trace under {m:?}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Host-language programs (every corpus class) on the company
    /// database: identical traces whatever the planner picks.
    #[test]
    fn host_programs_are_plan_invariant(class_ix in 0usize..ProgramClass::ALL.len(), seed in 0u64..1000) {
        let class = ProgramClass::ALL[class_ix];
        let program = generate_program(class, seed);
        let traces = traces_per_mode(|| {
            let mut db = named::company_db(4, 3, 8);
            // The runtime-verb class reads its DML verb from the terminal.
            run_host(&mut db, &program, Inputs::new().with_terminal(&["RETRIEVE"])).unwrap()
        });
        assert_all_identical(&traces, &format!("host {class} seed {seed}"));
    }

    /// SEQUEL queries over keyed + secondary-indexed tables: the probe /
    /// scan decision is invisible in the trace.
    #[test]
    fn sequel_queries_are_plan_invariant(form in 0usize..4, age in 21i64..65, emp in 0usize..40) {
        let src = match form {
            0 => format!("SEQUEL PROGRAM Q;\nSELECT ENAME FROM EMP WHERE E# = 'E{emp:04}';\nEND PROGRAM;"),
            1 => format!("SEQUEL PROGRAM Q;\nSELECT ENAME, AGE FROM EMP WHERE AGE = {age};\nEND PROGRAM;"),
            2 => format!("SEQUEL PROGRAM Q;\nSELECT E# FROM EMP WHERE AGE = {age} ORDER BY E#;\nEND PROGRAM;"),
            _ => format!("SEQUEL PROGRAM Q;\nSELECT ENAME FROM EMP WHERE AGE = {age} AND E# = 'E{emp:04}';\nEND PROGRAM;"),
        };
        let program = parse_sequel_program(&src).unwrap();
        let traces = traces_per_mode(|| {
            let mut db = named::personnel_relational_db(4, 8).unwrap();
            db.create_index("EMP", &["AGE"]).unwrap();
            run_sequel(&mut db, &program, Inputs::new()).unwrap()
        });
        assert_all_identical(&traces, &format!("sequel form {form} age {age} emp {emp}"));
    }

    /// DBTG navigation with keyed FIND ANY ... USING plus set scans:
    /// probe-or-scan, the currency the program observes is the same.
    #[test]
    fn dbtg_programs_are_plan_invariant(d in 0usize..8, yos in 0i64..6) {
        let src = format!(
            "DBTG PROGRAM P.
  MOVE 'D{d}' TO D# IN DEPT.
  FIND ANY DEPT USING D#.
  IF STATUS NOTFOUND GO TO FINISH.
  GET DEPT.
  PRINT DEPT.DNAME.
  MOVE {yos} TO YEAR-OF-SERVICE IN EMP.
NEXT.
  FIND NEXT EMP WITHIN ED USING YEAR-OF-SERVICE.
  IF STATUS ENDSET GO TO FINISH.
  GET EMP.
  PRINT EMP.ENAME.
  GO TO NEXT.
FINISH.
  STOP.
END PROGRAM."
        );
        let program = parse_dbtg(&src).unwrap();
        let traces = traces_per_mode(|| {
            let mut db = named::personnel_network_db(6, 10).unwrap();
            run_dbtg(&mut db, &program, Inputs::new()).unwrap()
        });
        assert_all_identical(&traces, &format!("dbtg dept {d} yos {yos}"));
    }

    /// DL/I path searches (GU with qualified SSAs, then a GN sweep): the
    /// hierarchic engine reports the same segments under every mode.
    #[test]
    fn dli_programs_are_plan_invariant(d in 0usize..7, sweep in 0usize..2) {
        let sweep = sweep == 1;
        let src = if sweep {
            format!(
                "DLI PROGRAM P.
  GU DIV(DIV-NAME = 'DIV{d}') EMP.
  IF STATUS GE GO TO DONE.
  PRINT EMP-NAME.
LOOP.
  GN EMP.
  IF STATUS GB GO TO DONE.
  PRINT EMP-NAME.
  GO TO LOOP.
DONE.
  STOP.
END PROGRAM."
            )
        } else {
            format!(
                "DLI PROGRAM P.
  GU DIV(DIV-NAME = 'DIV{d}').
  IF STATUS GE GO TO DONE.
  PRINT DIV-NAME.
DONE.
  STOP.
END PROGRAM."
            )
        };
        let program = parse_dli(&src).unwrap();
        let traces = traces_per_mode(|| {
            let mut db = forest();
            run_dli(&mut db, &program, Inputs::new()).unwrap()
        });
        assert_all_identical(&traces, &format!("dli div {d} sweep {sweep}"));
    }
}

fn forest() -> HierDb {
    let schema = HierSchema::new("COMPANY").with_root(
        SegmentDef::new("DIV", vec![FieldDef::new("DIV-NAME", FieldType::Char(20))])
            .with_seq_field("DIV-NAME")
            .with_child(
                SegmentDef::new("EMP", vec![FieldDef::new("EMP-NAME", FieldType::Char(25))])
                    .with_seq_field("EMP-NAME"),
            ),
    );
    let mut db = HierDb::new(schema).unwrap();
    for d in 0..5 {
        let div = db
            .insert("DIV", &[("DIV-NAME", Value::str(format!("DIV{d}")))], None)
            .unwrap();
        for e in 0..6 {
            db.insert(
                "EMP",
                &[("EMP-NAME", Value::str(format!("E{d:02}{e:02}")))],
                Some(div),
            )
            .unwrap();
        }
    }
    db
}

/// The E2 study matrix — every transform × program class cell — is
/// byte-identical under the cost-based planner and forced full scans, at
/// 1, 2, and 8 worker threads. The planner cannot leak into outcomes.
#[test]
fn study_matrix_is_plan_and_thread_invariant() {
    let _guard = PLAN_MODE.lock().unwrap_or_else(|e| e.into_inner());
    let study = |threads: usize| {
        success_rate_study_config(&StudyConfig {
            threads,
            ..StudyConfig::new(2, 1979)
        })
    };

    let prev = set_plan_mode(PlanMode::ForceScan);
    let reference = study(1);
    set_plan_mode(PlanMode::CostBased);
    for threads in [1usize, 2, 8] {
        let got = study(threads);
        assert_eq!(
            reference, got,
            "study matrix diverged (cost-based, {threads} threads)"
        );
    }
    set_plan_mode(prev);
}
