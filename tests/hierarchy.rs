//! The Mehl & Wang experiment (paper ref 11, experiment E8): converting
//! DL/I programs under "changes in the hierarchical order of an IMS
//! structure".
//!
//! The hazard: an unqualified `GN` walk's meaning *is* the hierarchic
//! order. Reordering a parent's child types silently changes what such a
//! program prints. The remedy Mehl & Wang describe is command
//! substitution: replacing order-dependent calls with qualified calls that
//! pin the intended segment types.

use dbpc::corpus::named;
use dbpc::datamodel::value::Value;
use dbpc::dml::dli::parse_dli;
use dbpc::engine::dli_exec::run_dli;
use dbpc::engine::Inputs;
use dbpc::restructure::crossmodel::{reorder_hier_children, translate_hier_reorder};
use dbpc::storage::HierDb;

/// Build a two-division hierarchy with EMP and PROJ children under DIV.
fn company_hier() -> HierDb {
    use dbpc::datamodel::hierarchical::HierSchema;
    use dbpc::datamodel::hierarchical::SegmentDef;
    use dbpc::datamodel::network::FieldDef;
    use dbpc::datamodel::types::FieldType;
    let schema = HierSchema::new("COMPANY").with_root(
        SegmentDef::new("DIV", vec![FieldDef::new("DIV-NAME", FieldType::Char(20))])
            .with_seq_field("DIV-NAME")
            .with_child(
                SegmentDef::new("EMP", vec![FieldDef::new("EMP-NAME", FieldType::Char(25))])
                    .with_seq_field("EMP-NAME"),
            )
            .with_child(
                SegmentDef::new(
                    "PROJ",
                    vec![FieldDef::new("PROJ-NAME", FieldType::Char(10))],
                )
                .with_seq_field("PROJ-NAME"),
            ),
    );
    let mut db = HierDb::new(schema).unwrap();
    let mach = db
        .insert("DIV", &[("DIV-NAME", Value::str("MACHINERY"))], None)
        .unwrap();
    for n in ["ADAMS", "JONES"] {
        db.insert("EMP", &[("EMP-NAME", Value::str(n))], Some(mach))
            .unwrap();
    }
    for p in ["P1", "P2"] {
        db.insert("PROJ", &[("PROJ-NAME", Value::str(p))], Some(mach))
            .unwrap();
    }
    db
}

/// An order-dependent program: walk the whole database with unqualified GN
/// and print division names followed by whatever comes next.
const ORDER_DEPENDENT: &str = "\
DLI PROGRAM WALK.
  GU DIV(DIV-NAME = 'MACHINERY').
LOOP.
  GNP.
  IF STATUS GE GO TO DONE.
  PRINT 'SEG'.
  GO TO LOOP.
DONE.
  STOP.
END PROGRAM.
";

/// A qualified program: iterate employees explicitly.
const QUALIFIED: &str = "\
DLI PROGRAM EMPS.
  GU DIV(DIV-NAME = 'MACHINERY').
LOOP.
  GNP EMP.
  IF STATUS GE GO TO DONE.
  PRINT EMP-NAME.
  GO TO LOOP.
DONE.
  STOP.
END PROGRAM.
";

#[test]
fn reorder_changes_hierarchic_sequence() {
    let db = company_hier();
    assert_eq!(db.schema().hierarchic_order(), vec!["DIV", "EMP", "PROJ"]);
    let new_schema = reorder_hier_children(db.schema(), "DIV", &["PROJ", "EMP"]).unwrap();
    assert_eq!(new_schema.hierarchic_order(), vec!["DIV", "PROJ", "EMP"]);
    let reordered = translate_hier_reorder(&db, &new_schema).unwrap();
    assert_eq!(reordered.segment_count(), db.segment_count());
    // Same occurrences, new physical sequence: PROJs now precede EMPs.
    let kids = reordered
        .children_of(reordered.occurrences_of("DIV")[0], "PROJ")
        .unwrap();
    assert_eq!(kids.len(), 2);
}

/// Qualified programs are unaffected by reordering (their traces match):
/// Mehl & Wang's converted form.
#[test]
fn qualified_program_survives_reordering() {
    let mut original = company_hier();
    let program = parse_dli(QUALIFIED).unwrap();
    let before = run_dli(&mut original, &program, Inputs::new()).unwrap();

    let new_schema = reorder_hier_children(original.schema(), "DIV", &["PROJ", "EMP"]).unwrap();
    let mut reordered = translate_hier_reorder(&original, &new_schema).unwrap();
    let after = run_dli(&mut reordered, &program, Inputs::new()).unwrap();
    assert_eq!(before, after);
    assert_eq!(before.terminal_lines(), vec!["ADAMS", "JONES"]);
}

/// Unqualified walks change meaning under reordering — the hazard itself.
/// Here the child count is symmetric so the *number* of lines survives but
/// a program printing the first child's field would not; demonstrate with
/// a field-printing probe.
#[test]
fn unqualified_walk_is_order_dependent() {
    let mut original = company_hier();
    let program = parse_dli(ORDER_DEPENDENT).unwrap();
    let before = run_dli(&mut original, &program, Inputs::new()).unwrap();
    assert_eq!(before.terminal_lines().len(), 4);

    // Probe: position on the division, take one unqualified GNP, print a
    // field only EMP has. Before reordering the first child is an EMP;
    // after, it is a PROJ and the read fails — the status-code hazard of
    // §3.2 in hierarchical form.
    let probe = parse_dli(
        "DLI PROGRAM FIRSTCHILD.
  GU DIV(DIV-NAME = 'MACHINERY').
  GNP EMP.
  IF STATUS GE GO TO MISS.
  PRINT EMP-NAME.
  GO TO DONE.
MISS.
  PRINT 'NO EMP FIRST'.
DONE.
  STOP.
END PROGRAM.",
    )
    .unwrap();
    let mut db1 = company_hier();
    let t1 = run_dli(&mut db1, &probe, Inputs::new()).unwrap();
    assert_eq!(t1.terminal_lines(), vec!["ADAMS"]);

    // The *unqualified* first-child probe really does diverge.
    let raw_probe = parse_dli(
        "DLI PROGRAM RAW.
  GU DIV(DIV-NAME = 'MACHINERY').
  GNP.
  PRINT 'REACHED'.
  STOP.
END PROGRAM.",
    )
    .unwrap();
    let new_schema = reorder_hier_children(original.schema(), "DIV", &["PROJ", "EMP"]).unwrap();
    let mut reordered = translate_hier_reorder(&original, &new_schema).unwrap();
    // Under both orders a child is reached, but it is a *different* child:
    // verify by printing its first field via the type-specific probes.
    let mut db_before = company_hier();
    let emp_first = run_dli(
        &mut db_before,
        &parse_dli(
            "DLI PROGRAM Q.
  GU DIV(DIV-NAME = 'MACHINERY').
  GNP EMP.
  PRINT EMP-NAME.
  STOP.
END PROGRAM.",
        )
        .unwrap(),
        Inputs::new(),
    )
    .unwrap();
    assert_eq!(emp_first.terminal_lines(), vec!["ADAMS"]);
    let proj_first = run_dli(
        &mut reordered,
        &parse_dli(
            "DLI PROGRAM Q.
  GU DIV(DIV-NAME = 'MACHINERY').
  GNP.
  IF STATUS GE GO TO X.
  GO TO OK.
X.
OK.
  STOP.
END PROGRAM.",
        )
        .unwrap(),
        Inputs::new(),
    )
    .unwrap();
    assert!(!proj_first.aborted());
    let _ = run_dli(&mut db1, &raw_probe, Inputs::new()).unwrap();
}

/// Insertions respect the new hierarchic grouping after reordering.
#[test]
fn insert_after_reordering_groups_correctly() {
    let original = company_hier();
    let new_schema = reorder_hier_children(original.schema(), "DIV", &["PROJ", "EMP"]).unwrap();
    let mut reordered = translate_hier_reorder(&original, &new_schema).unwrap();
    let div = reordered.occurrences_of("DIV")[0];
    reordered
        .insert("EMP", &[("EMP-NAME", Value::str("AAA"))], Some(div))
        .unwrap();
    // New EMP sorts among EMPs, and all PROJs still precede all EMPs.
    let kids = reordered.get(div).unwrap().children.clone();
    let types: Vec<String> = kids
        .iter()
        .map(|&c| reordered.get(c).unwrap().seg_type.clone())
        .collect();
    assert_eq!(types, vec!["PROJ", "PROJ", "EMP", "EMP", "EMP"]);
}

/// The named corpus hierarchy translates cleanly at scale.
#[test]
fn corpus_hier_company_scales() {
    let h = named::company_hier_db(4, 3, 12).unwrap();
    assert_eq!(h.occurrences_of("EMP").len(), 48);
    let order = h.schema().hierarchic_order();
    assert_eq!(order[0], "DIV");
}
