//! Buffer-pressure equivalence: the paged engine is *transparent*.
//!
//! The out-of-core record store must never be observable through the
//! query interface: running the study's program slice (the same
//! generated classes behind the E2 success-rate matrix and the E9 cost
//! model) against a heap-backed database produces byte-identical traces
//! whether the buffer pool holds 4 frames or comfortably fits the whole
//! database — and identical to the all-in-RAM engine. The tiny pool is
//! genuinely under pressure (pages ≫ frames), so every scan and every
//! mutation below crosses eviction and page-reload paths.

use dbpc::corpus::gen::{generate_program, ProgramClass};
use dbpc::corpus::named;
use dbpc::engine::host_exec::run_host;
use dbpc::engine::Inputs;

const PAGE: usize = 256;

/// (label, pool frames): far below, near, and far above the data size.
const POOLS: &[(&str, usize)] = &[("tiny", 4), ("medium", 32), ("ample", 4096)];

fn inputs() -> Inputs {
    Inputs::new().with_terminal(&["RETRIEVE"])
}

/// The full program slice, applied *sequentially* to one database so
/// mutating classes (StoreEmp, ModifyAge, …) accumulate: later programs
/// read state earlier ones wrote through the eviction path.
fn slice() -> Vec<(ProgramClass, u64)> {
    let mut progs = Vec::new();
    for seed in 0..4u64 {
        for &class in ProgramClass::ALL {
            progs.push((class, seed));
        }
    }
    progs
}

#[test]
fn program_slice_traces_are_pool_size_invariant() {
    let mem_src = named::company_db(4, 3, 25);

    // Reference: the in-memory engine runs the whole slice.
    let mut mem = mem_src.clone();
    let mut expected = Vec::new();
    for &(class, seed) in &slice() {
        let p = generate_program(class, seed);
        expected.push(run_host(&mut mem, &p, inputs()).unwrap());
    }

    for &(label, pool) in POOLS {
        let mut db = mem_src.to_paged(PAGE, pool).unwrap();
        assert!(db.is_paged());
        assert_eq!(
            db.fingerprint(),
            mem_src.fingerprint(),
            "{label}: paged twin drifted before any program ran"
        );
        for (i, &(class, seed)) in slice().iter().enumerate() {
            let p = generate_program(class, seed);
            let trace = run_host(&mut db, &p, inputs()).unwrap();
            assert_eq!(
                trace, expected[i],
                "{label} pool ({pool} frames): trace for {class} seed {seed} drifted"
            );
        }
        assert_eq!(
            db.fingerprint(),
            mem.fingerprint(),
            "{label} pool ({pool} frames): final state drifted after the slice"
        );
    }
}

/// The tiny pool really is under pressure: the seeded database spans
/// several times more heap pages than the pool has frames, so the
/// equivalence above exercised eviction, not residence.
#[test]
fn tiny_pool_is_actually_under_pressure() {
    let db = named::company_db(4, 3, 25).to_paged(PAGE, 4).unwrap();
    let stats = db.heap_stats().expect("paged database has heap stats");
    assert!(
        stats.pages >= 16,
        "seed data spans only {} pages — grow the corpus so pool=4 evicts",
        stats.pages
    );
}
