//! Experiment E21: crash-safe conversion service — the chaos matrix.
//!
//! E20 proved the storage substrate recovers across processes; this
//! matrix proves the *service* does. A child process
//! (`src/bin/service_crash.rs`) drives a fixed 8-job workload through a
//! durable [`ConversionService`] and is killed for real —
//! `std::process::exit(9)` fired from inside the job journal's boundary
//! hook, no unwinding, no `Drop` — at **every** journal boundary a
//! clean run crosses, at 1, 2, and 8 workers. A fresh process then
//! reopens the same root, resubmits exactly the admissions the journal
//! lost (always a suffix: the submitter is single-threaded and admits
//! are fsynced), and must assemble a deterministic report whose
//! fingerprint is byte-identical to an uninterrupted run's.
//!
//! The kill sweep is then crossed with the deterministic disk-fault
//! injector aimed at the journal's own file manager (torn writes, short
//! writes, failed fsyncs): a faulted journal *wedges* — the service
//! stays available, later jobs simply lose durability — so those cells
//! may finish without ever reaching the kill boundary (exit 0), and
//! recovery must still converge on the clean fingerprint. A final cell
//! family layers seeded transient verification faults (the
//! deterministic stand-in for lock-timeout retries — both exercise the
//! same release-locks-and-retry path) on top of the kill sweep.
//!
//! Invariants asserted per cell, in the notation of the issue:
//! **admitted = completed ∪ replayed** (`admitted == results + replayed`
//! from the recovery accounting, with the resubmitted suffix covering
//! the rest of the workload) and the recovered deterministic report
//! fingerprint equals the clean run's at every worker count.

use dbpc::storage::{pool, TempDir};
use std::path::Path;
use std::process::{Command, Output};

const BIN: &str = env!("CARGO_BIN_EXE_service_crash");
const EXIT_KILLED: i32 = 9;
const WORKER_COUNTS: [usize; 3] = [1, 2, 8];

fn run(args: &[&str]) -> Output {
    Command::new(BIN)
        .args(args)
        .output()
        .unwrap_or_else(|e| panic!("spawning {BIN} {args:?}: {e}"))
}

/// Parse a report line of whitespace-separated fields, the first hex
/// (the deterministic fingerprint), the rest decimal.
fn parse_line(line: &str) -> Vec<u64> {
    let mut out = Vec::new();
    for (i, field) in line.split_whitespace().enumerate() {
        let radix = if i == 0 { 16 } else { 10 };
        out.push(
            u64::from_str_radix(field, radix)
                .unwrap_or_else(|e| panic!("bad report line {line:?}: {e}")),
        );
    }
    out
}

/// Run the harness expecting a clean exit; parse its report line.
fn run_ok(args: &[&str]) -> Vec<u64> {
    let out = run(args);
    assert!(
        out.status.success(),
        "{args:?} failed ({:?}): {}",
        out.status.code(),
        String::from_utf8_lossy(&out.stderr)
    );
    parse_line(&String::from_utf8_lossy(&out.stdout))
}

/// Run the harness expecting the deliberate kill.
fn run_dies(args: &[&str]) {
    let out = run(args);
    assert_eq!(
        out.status.code(),
        Some(EXIT_KILLED),
        "{args:?} exited {:?}, wanted {EXIT_KILLED}: {}",
        out.status.code(),
        String::from_utf8_lossy(&out.stderr)
    );
}

fn path_str(p: &Path) -> &str {
    p.to_str().unwrap()
}

/// One uninterrupted run: `(fingerprint, boundaries, jobs)`.
fn clean(workers: usize, cell: &str, tag: &str) -> (u64, u64, u64) {
    let dir = TempDir::new(&format!("e21-clean-{tag}-{workers}")).unwrap();
    let r = run_ok(&["clean", path_str(dir.path()), &workers.to_string(), cell]);
    (r[0], r[1], r[2])
}

/// Kill at `boundary` under `cell`, then recover fault-free (positional
/// journal-disk faults would re-fire on replay I/O) unless the cell is a
/// pipeline fault, which is part of the workload's semantics and must be
/// present in the recovery run too. Asserts the recovery accounting
/// invariant and returns the recovered fingerprint.
fn kill_and_recover(workers: usize, boundary: u64, cell: &str, tag: &str) -> u64 {
    let dir = TempDir::new(&format!("e21-{tag}-{workers}-{boundary}")).unwrap();
    let root = path_str(dir.path());
    let w = workers.to_string();
    let b = boundary.to_string();
    let kill_args = ["kill", root, &w, &b, cell];
    if cell.contains(':') {
        // Disk-fault cells: the journal may wedge before the kill
        // boundary ever fires, in which case the run completes (the
        // service stays available on a wedged journal by design).
        let out = run(&kill_args);
        match out.status.code() {
            Some(0) | Some(EXIT_KILLED) => {}
            code => panic!(
                "{kill_args:?} exited {code:?}, wanted 0 or {EXIT_KILLED}: {}",
                String::from_utf8_lossy(&out.stderr)
            ),
        }
    } else {
        run_dies(&kill_args);
    }
    let recover_cell = if cell.contains(':') { "none" } else { cell };
    let r = run_ok(&["recover", root, &w, recover_cell]);
    let (fp, admitted, results, replayed, resubmitted) = (r[0], r[1], r[2], r[3], r[4]);
    assert_eq!(
        admitted,
        results + replayed,
        "{tag} w={workers} b={boundary}: journaled admissions must partition \
         into recovered results and replayed jobs"
    );
    assert_eq!(
        admitted + resubmitted,
        8,
        "{tag} w={workers} b={boundary}: lost admissions must be exactly the \
         workload suffix"
    );
    fp
}

/// Kill the service at every journal boundary an uninterrupted run
/// crosses, at every worker count; recovery must land on the clean
/// fingerprint every time — and the clean fingerprint itself must not
/// move across worker counts.
#[test]
fn killed_at_every_journal_boundary_recovers_byte_identical_report() {
    let (clean_fp, boundaries, jobs) = clean(1, "none", "ref");
    assert_eq!(jobs, 8, "clean run must complete the whole workload");
    assert!(
        boundaries > 16,
        "8 admits (2 events each) + 8 dones + finalize should cross >16 \
         boundaries, saw {boundaries}"
    );
    for workers in WORKER_COUNTS {
        let (fp, b, j) = clean(workers, "none", "ref");
        assert_eq!(
            (fp, b, j),
            (clean_fp, boundaries, jobs),
            "clean run drifted at {workers} workers"
        );
    }
    let cells: Vec<(usize, u64)> = WORKER_COUNTS
        .iter()
        .flat_map(|&w| (0..boundaries).map(move |b| (w, b)))
        .collect();
    let fps = pool::parallel_map(&cells, 8, |_, &(workers, boundary)| {
        kill_and_recover(workers, boundary, "none", "kill")
    });
    for ((workers, boundary), fp) in cells.iter().zip(fps) {
        assert_eq!(
            fp, clean_fp,
            "recovered report drifted: kill at boundary {boundary}, {workers} workers"
        );
    }
}

/// Cross the kill sweep with journal-disk faults: whether the injected
/// torn/short/fsync fault wedges the journal before the kill fires or
/// the kill lands first, a fresh process must still recover to the clean
/// fingerprint. Wedging trades durability (more resubmission) for
/// availability — never correctness.
#[test]
fn journal_disk_faults_wedge_without_breaking_recovery() {
    let (clean_fp, boundaries, _) = clean(2, "none", "fault-ref");
    let mut cells: Vec<(usize, String, u64)> = Vec::new();
    for kind in ["torn", "short", "fsync"] {
        for at in (0..24).step_by(3) {
            // Sweep the kill position alongside the fault position so
            // wedge-before-kill and kill-before-wedge both occur.
            let boundary = (at * 7 + 3) % boundaries;
            cells.push((2, format!("{kind}:{at}"), boundary));
        }
    }
    for &workers in &[1usize, 8] {
        cells.push((workers, "torn:2".into(), 5));
        cells.push((workers, "short:5".into(), 9));
        cells.push((workers, "fsync:4".into(), 13));
    }
    let fps = pool::parallel_map(&cells, 8, |_, (workers, cell, boundary)| {
        kill_and_recover(*workers, *boundary, cell, "fault")
    });
    for ((workers, cell, boundary), fp) in cells.iter().zip(fps) {
        assert_eq!(
            fp, clean_fp,
            "recovered report drifted: cell {cell}, kill at {boundary}, \
             {workers} workers"
        );
    }
}

/// Layer seeded transient verification faults (the deterministic
/// lock-timeout stand-in: same release-locks-and-retry path, same
/// deterministic backoff schedule) over the kill sweep. The pipe cell
/// has its own clean fingerprint — retried and demoted jobs are part of
/// its deterministic outcome — which must also be worker-count
/// invariant and crash invariant.
#[test]
fn pipeline_faults_and_retries_survive_crash_recovery() {
    let (pipe_fp, boundaries, jobs) = clean(1, "pipe", "pipe-ref");
    assert_eq!(jobs, 8);
    let (none_fp, ..) = clean(1, "none", "pipe-ref");
    assert_ne!(
        pipe_fp, none_fp,
        "seeded verification faults should change some job outcomes"
    );
    for workers in WORKER_COUNTS {
        let (fp, ..) = clean(workers, "pipe", "pipe-ref");
        assert_eq!(fp, pipe_fp, "pipe cell drifted at {workers} workers");
    }
    let cells: Vec<(usize, u64)> = WORKER_COUNTS
        .iter()
        .flat_map(|&w| (0..boundaries).step_by(4).map(move |b| (w, b)))
        .collect();
    let fps = pool::parallel_map(&cells, 8, |_, &(workers, boundary)| {
        kill_and_recover(workers, boundary, "pipe", "pipe")
    });
    for ((workers, boundary), fp) in cells.iter().zip(fps) {
        assert_eq!(
            fp, pipe_fp,
            "pipe recovery drifted: kill at boundary {boundary}, {workers} workers"
        );
    }
}
