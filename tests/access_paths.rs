//! Access-path regression tests.
//!
//! The paper's equivalence criterion (§1.1) is observable I/O; the access
//! path is free to change underneath it — that freedom is what the
//! Optimizer box in Fig. 4.1 exploits. These tests pin both halves of that
//! contract: indexed and scanning executions produce **byte-identical**
//! traces, and the counters prove the cheaper path actually engaged.

use dbpc::datamodel::hierarchical::{HierSchema, SegmentDef};
use dbpc::datamodel::network::FieldDef;
use dbpc::datamodel::relational::{ColumnDef, RelationalSchema, TableDef};
use dbpc::datamodel::types::FieldType;
use dbpc::datamodel::value::Value;
use dbpc::dml::dli::parse_dli;
use dbpc::dml::sequel::parse_sequel_program;
use dbpc::engine::dli_exec::run_dli;
use dbpc::engine::sequel_exec::run_sequel;
use dbpc::engine::Inputs;
use dbpc::storage::{HierDb, RelationalDb};

const ROWS: i64 = 200;

/// A parts table; `CLASS` takes 10 distinct values so an equality predicate
/// selects ~1/10th of the rows.
fn parts_db(with_index: bool) -> RelationalDb {
    let schema = RelationalSchema::new("INVENTORY").with_table(
        TableDef::new(
            "PART",
            vec![
                ColumnDef::new("P#", FieldType::Int(6)),
                ColumnDef::new("CLASS", FieldType::Char(4)),
                ColumnDef::new("QTY", FieldType::Int(6)),
            ],
        )
        .with_key(vec!["P#"]),
    );
    let mut db = RelationalDb::new(schema).unwrap();
    if with_index {
        db.create_index("PART", &["CLASS"]).unwrap();
    }
    for i in 0..ROWS {
        db.insert(
            "PART",
            &[
                ("P#", Value::Int(i)),
                ("CLASS", Value::str(format!("C{}", i % 10))),
                ("QTY", Value::Int((i * 7) % 100)),
            ],
        )
        .unwrap();
    }
    db
}

const CLASS_QUERY: &str = "SEQUEL PROGRAM Q;
SELECT P#, QTY
FROM PART
WHERE CLASS = 'C3';
END PROGRAM;";

#[test]
fn indexed_select_scans_fewer_rows_with_identical_output() {
    let program = parse_sequel_program(CLASS_QUERY).unwrap();

    let mut scan_db = parts_db(false);
    let scan_trace = run_sequel(&mut scan_db, &program, Inputs::new()).unwrap();

    let mut ix_db = parts_db(true);
    let ix_trace = run_sequel(&mut ix_db, &program, Inputs::new()).unwrap();

    // Byte-identical observable behavior…
    assert_eq!(scan_trace.events, ix_trace.events);
    assert_eq!(scan_trace.to_string(), ix_trace.to_string());
    assert_eq!(ix_trace.events.len(), (ROWS / 10) as usize);

    // …from a measurably different access path.
    assert_eq!(scan_trace.access.rows_scanned, ROWS as u64);
    assert_eq!(scan_trace.access.index_hits, 0);
    assert!(
        ix_trace.access.rows_scanned < ROWS as u64,
        "indexed run visited {} rows, expected fewer than {ROWS}",
        ix_trace.access.rows_scanned
    );
    assert_eq!(ix_trace.access.rows_scanned, (ROWS / 10) as u64);
    assert!(ix_trace.access.index_hits > 0);
}

#[test]
fn pushdown_handles_residual_and_contradictory_predicates() {
    // Residual: the non-equality conjunct must still filter candidates.
    let residual = parse_sequel_program(
        "SEQUEL PROGRAM R;
SELECT P#
FROM PART
WHERE CLASS = 'C3' AND QTY < 50;
END PROGRAM;",
    )
    .unwrap();
    // Contradictory: duplicate equality terms on one column select nothing.
    let contradictory = parse_sequel_program(
        "SEQUEL PROGRAM C;
SELECT P#
FROM PART
WHERE CLASS = 'C3' AND CLASS = 'C4';
END PROGRAM;",
    )
    .unwrap();
    for program in [&residual, &contradictory] {
        let mut scan_db = parts_db(false);
        let mut ix_db = parts_db(true);
        let scan_trace = run_sequel(&mut scan_db, program, Inputs::new()).unwrap();
        let ix_trace = run_sequel(&mut ix_db, program, Inputs::new()).unwrap();
        assert_eq!(scan_trace.events, ix_trace.events);
    }
}

fn forest() -> HierDb {
    let schema = HierSchema::new("COMPANY").with_root(
        SegmentDef::new("DIV", vec![FieldDef::new("DIV-NAME", FieldType::Char(20))])
            .with_seq_field("DIV-NAME")
            .with_child(
                SegmentDef::new("EMP", vec![FieldDef::new("EMP-NAME", FieldType::Char(25))])
                    .with_seq_field("EMP-NAME"),
            ),
    );
    let mut db = HierDb::new(schema).unwrap();
    for d in 0..5 {
        let div = db
            .insert("DIV", &[("DIV-NAME", Value::str(format!("DIV{d}")))], None)
            .unwrap();
        for e in 0..20 {
            db.insert(
                "EMP",
                &[("EMP-NAME", Value::str(format!("E{d:02}{e:02}")))],
                Some(div),
            )
            .unwrap();
        }
    }
    db
}

#[test]
fn gn_full_traversal_rebuilds_preorder_at_most_once() {
    let mut db = forest();
    let program = parse_dli(
        "DLI PROGRAM WALK.
LOOP.
  GN EMP.
  IF STATUS GB GO TO DONE.
  PRINT EMP-NAME.
  GO TO LOOP.
DONE.
  STOP.
END PROGRAM.",
    )
    .unwrap();
    let trace = run_dli(&mut db, &program, Inputs::new()).unwrap();
    assert_eq!(trace.events.len(), 100);
    // Zero mutations in the program ⇒ preorder_rebuilds ≤ 0 + 1. This is
    // the amortization guarantee: the historical implementation paid a
    // full preorder materialization on every one of the 100+ GN calls.
    assert!(
        trace.access.preorder_rebuilds <= 1,
        "full GN traversal rebuilt the preorder {} times",
        trace.access.preorder_rebuilds
    );
}

#[test]
fn gn_with_interleaved_mutations_bounds_rebuilds() {
    let mut db = forest();
    // 3 mutations (2 ISRT + 1 DLET), each followed by more navigation.
    let program = parse_dli(
        "DLI PROGRAM MIX.
  GU DIV(DIV-NAME = 'DIV1').
  ISRT EMP (EMP-NAME = 'NEW-A').
  GN EMP.
  ISRT EMP (EMP-NAME = 'NEW-B').
  GN EMP.
  DLET.
LOOP.
  GN EMP.
  IF STATUS GB GO TO DONE.
  GO TO LOOP.
DONE.
  STOP.
END PROGRAM.",
    )
    .unwrap();
    let trace = run_dli(&mut db, &program, Inputs::new()).unwrap();
    let mutations = 3;
    assert!(
        trace.access.preorder_rebuilds <= mutations + 1,
        "{} rebuilds for {mutations} mutations",
        trace.access.preorder_rebuilds
    );
}
