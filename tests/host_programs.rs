//! Larger host-program scenarios: batch parameter files, nested loops,
//! manual set maintenance — the shapes 1979 application suites actually
//! had.

use dbpc::corpus::named;
use dbpc::datamodel::network::Insertion;
use dbpc::dml::host::parse_program;
use dbpc::engine::host_exec::run_host;
use dbpc::engine::{Inputs, TraceEvent};

/// A parameter-file-driven batch report: the program reads thresholds from
/// a card file and emits one report per card.
#[test]
fn batch_report_driven_by_parameter_file() {
    let mut db = named::company_db(2, 2, 6);
    let p = parse_program(
        "PROGRAM BATCH;
  READ FILE 'CARDS' INTO N;
  WHILE N > 0 DO
    READ FILE 'CARDS' INTO LIMIT;
    FIND E := FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-EMP, EMP(AGE > LIMIT));
    WRITE FILE 'REPORT' 'OVER', LIMIT, COUNT(E);
    LET N := N - 1;
  END WHILE;
END PROGRAM;",
    )
    .unwrap();
    let inputs = Inputs::new().with_file("CARDS", &["3", "25", "40", "60"]);
    let t = run_host(&mut db, &p, inputs).unwrap();
    let reports: Vec<&str> = t
        .events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::FileWrite { file, line } if file == "REPORT" => Some(line.as_str()),
            _ => None,
        })
        .collect();
    assert_eq!(reports.len(), 3);
    assert!(reports[0].starts_with("OVER 25"));
    assert!(reports[2].starts_with("OVER 60"));
}

/// Nested iteration: divisions outer, employees inner, with a per-division
/// header — the classic control-break report.
#[test]
fn control_break_report() {
    let mut db = named::company_db(2, 1, 2);
    let p = parse_program(
        "PROGRAM BREAKS;
  FIND DIVS := FIND(DIV: SYSTEM, ALL-DIV, DIV);
  FOR EACH D IN DIVS DO
    PRINT 'DIVISION', D.DIV-NAME;
    FOR EACH R IN FIND(EMP: D, DIV-EMP, EMP) DO
      PRINT R.EMP-NAME;
    END FOR;
  END FOR;
END PROGRAM;",
    )
    .unwrap();
    let t = run_host(&mut db, &p, Inputs::new()).unwrap();
    assert_eq!(
        t.terminal_lines(),
        vec![
            "DIVISION AEROSPACE",
            "EMP-000002",
            "EMP-000003",
            "DIVISION MACHINERY",
            "EMP-000000",
            "EMP-000001",
        ]
    );
}

/// FOR EACH over a singleton FIND: D binds one record at a time, so the
/// inner FIND's collection-start sees exactly one owner.
#[test]
fn manual_membership_maintenance() {
    let mut schema = named::company_schema();
    schema.set_mut("DIV-EMP").unwrap().insertion = Insertion::Manual;
    let mut db = dbpc::storage::NetworkDb::new(schema).unwrap();
    let p = parse_program(
        "PROGRAM POOL;
  STORE DIV (DIV-NAME := 'POOL', DIV-LOC := 'HQ');
  STORE DIV (DIV-NAME := 'WORKS', DIV-LOC := 'SITE');
  STORE EMP (EMP-NAME := 'DRIFTER', DEPT-NAME := 'TEMP', AGE := 33);
  FIND E := FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-EMP, EMP);
  PRINT 'ATTACHED', COUNT(E);
  FIND P := FIND(DIV: SYSTEM, ALL-DIV, DIV(DIV-NAME = 'POOL'));
  FIND FLOATING := FIND(DIV: SYSTEM, ALL-DIV, DIV(DIV-NAME = 'WORKS'));
  FIND X := FIND(EMP: P, DIV-EMP, EMP);
  PRINT 'IN POOL', COUNT(X);
END PROGRAM;",
    )
    .unwrap();
    let t = run_host(&mut db, &p, Inputs::new()).unwrap();
    // The drifter is stored unattached: reachable through no division.
    assert_eq!(t.terminal_lines(), vec!["ATTACHED 0", "IN POOL 0"]);
    // Attach, then move between divisions with CONNECT/DISCONNECT.
    let p2 = parse_program(
        "PROGRAM MOVE;
  FIND P := FIND(DIV: SYSTEM, ALL-DIV, DIV(DIV-NAME = 'POOL'));
  FIND W := FIND(DIV: SYSTEM, ALL-DIV, DIV(DIV-NAME = 'WORKS'));
  FIND E := FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-EMP, EMP);
  PRINT COUNT(E);
END PROGRAM;",
    )
    .unwrap();
    // (Re-run after manual connect through the API.)
    let drifters = db.records_of_type("EMP");
    let pool = db
        .records_of_type("DIV")
        .into_iter()
        .find(|&d| {
            db.field_value(d, "DIV-NAME").unwrap() == dbpc::datamodel::value::Value::str("POOL")
        })
        .unwrap();
    db.connect("DIV-EMP", pool, drifters[0]).unwrap();
    let t2 = run_host(&mut db, &p2, Inputs::new()).unwrap();
    assert_eq!(t2.terminal_lines(), vec!["1"]);
}

/// Terminal dialogue order is part of the trace: prompt, input, answer —
/// in exactly that order.
#[test]
fn dialogue_ordering_preserved() {
    let mut db = named::company_db(2, 1, 2);
    let p = parse_program(
        "PROGRAM ASK;
  PRINT 'DIVISION?';
  READ TERMINAL INTO D;
  FIND E := FIND(EMP: SYSTEM, ALL-DIV, DIV(DIV-NAME = D), DIV-EMP, EMP);
  PRINT 'COUNT', COUNT(E);
  PRINT 'AGAIN?';
  READ TERMINAL INTO A;
  IF A = 'YES' THEN
    PRINT 'BYE ANYWAY';
  END IF;
END PROGRAM;",
    )
    .unwrap();
    let t = run_host(
        &mut db,
        &p,
        Inputs::new().with_terminal(&["MACHINERY", "YES"]),
    )
    .unwrap();
    assert_eq!(
        t.events,
        vec![
            TraceEvent::TerminalOut("DIVISION?".into()),
            TraceEvent::TerminalIn("MACHINERY".into()),
            TraceEvent::TerminalOut("COUNT 2".into()),
            TraceEvent::TerminalOut("AGAIN?".into()),
            TraceEvent::TerminalIn("YES".into()),
            TraceEvent::TerminalOut("BYE ANYWAY".into()),
        ]
    );
}
