//! Property-based tests over the whole pipeline.
//!
//! The central property is the paper's acceptance criterion itself: **for
//! every generated program and every transformation class, if the
//! supervisor claims success, the converted program runs equivalently**
//! (strictly, or at the predicted-warning level of §5.2). Supporting
//! properties pin the programs-as-data infrastructure: print∘parse is the
//! identity for programs and schemas, and promote∘demote is the identity on
//! databases.

use dbpc::convert::equivalence::{check_equivalence, EquivalenceLevel};
use dbpc::convert::report::AutoAnalyst;
use dbpc::convert::Supervisor;
use dbpc::corpus::gen::{generate_program, ProgramClass, TransformClass};
use dbpc::corpus::named;
use dbpc::datamodel::ddl::{parse_network_schema, print_network_schema};
use dbpc::dml::host::{parse_program, print_program};
use dbpc::engine::Inputs;
use proptest::prelude::*;

fn any_program_class() -> impl Strategy<Value = ProgramClass> {
    prop::sample::select(ProgramClass::ALL.to_vec())
}

fn any_transform_class() -> impl Strategy<Value = TransformClass> {
    prop::sample::select(TransformClass::ALL.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// print ∘ parse is the identity on generated programs.
    #[test]
    fn program_text_round_trips(class in any_program_class(), seed in 0u64..10_000) {
        let p = generate_program(class, seed);
        let text = print_program(&p);
        let p2 = parse_program(&text).expect("printed program parses");
        prop_assert_eq!(p, p2);
    }

    /// A conversion that claims success runs equivalently — the paper's
    /// §1.1 criterion as a universally quantified property.
    #[test]
    fn successful_conversions_run_equivalently(
        pclass in any_program_class(),
        tclass in any_transform_class(),
        seed in 0u64..5_000,
    ) {
        let schema = named::company_schema();
        let restructuring = tclass.restructuring();
        let program = generate_program(pclass, seed);
        let report = Supervisor::new()
            .convert(&schema, &restructuring, &program, &mut AutoAnalyst)
            .expect("conversion analyzer accepts the study classes");
        if report.succeeded() {
            let src_db = named::company_db(4, 3, 6);
            let tgt_db = restructuring.translate(&src_db).expect("translation");
            let eq = check_equivalence(
                src_db,
                &program,
                tgt_db,
                report.program.as_ref().unwrap(),
                &Inputs::new().with_terminal(&["RETRIEVE"]),
                &report.warnings,
            )
            .expect("both programs run");
            prop_assert_ne!(
                eq.level,
                EquivalenceLevel::NotEquivalent,
                "unpredicted divergence for {} under {}:\n{}\nconverted:\n{}",
                pclass,
                tclass,
                eq.divergence.unwrap_or_default(),
                report.text.unwrap_or_default()
            );
        }
    }

    /// The optimizer never changes observable behavior.
    #[test]
    fn optimizer_is_behavior_preserving(
        pclass in any_program_class(),
        tclass in any_transform_class(),
        seed in 0u64..5_000,
    ) {
        let schema = named::company_schema();
        let restructuring = tclass.restructuring();
        let program = generate_program(pclass, seed);
        let plain = Supervisor::without_optimizer()
            .convert(&schema, &restructuring, &program, &mut AutoAnalyst)
            .unwrap();
        let optimized = Supervisor::new()
            .convert(&schema, &restructuring, &program, &mut AutoAnalyst)
            .unwrap();
        if let (Some(p1), Some(p2)) = (&plain.program, &optimized.program) {
            let db1 = restructuring.translate(&named::company_db(4, 3, 6)).unwrap();
            let mut db1 = db1;
            let mut db2 = db1.clone();
            let inputs = Inputs::new().with_terminal(&["RETRIEVE"]);
            let t1 = dbpc::engine::host_exec::run_host(&mut db1, p1, inputs.clone()).unwrap();
            let t2 = dbpc::engine::host_exec::run_host(&mut db2, p2, inputs).unwrap();
            prop_assert_eq!(t1, t2);
        }
    }

    /// promote ∘ demote is the identity on company databases (up to record
    /// ids), for any scale.
    #[test]
    fn promote_demote_identity(divs in 1usize..5, depts in 1usize..4, emps in 0usize..12) {
        let src = named::company_db(divs, depts, emps);
        let fwd = named::fig_4_4_restructuring();
        let mid = fwd.translate(&src).expect("promote");
        let back = fwd.inverse().unwrap().translate(&mid).expect("demote");
        // Compare the observable contents: every employee's full resolved
        // tuple, sorted.
        let dump = |db: &dbpc::storage::NetworkDb| -> Vec<String> {
            let mut rows: Vec<String> = db
                .records_of_type("EMP")
                .into_iter()
                .map(|e| {
                    format!(
                        "{} {} {} {}",
                        db.field_value(e, "EMP-NAME").unwrap(),
                        db.field_value(e, "DEPT-NAME").unwrap(),
                        db.field_value(e, "AGE").unwrap(),
                        db.field_value(e, "DIV-NAME").unwrap(),
                    )
                })
                .collect();
            rows.sort();
            rows
        };
        prop_assert_eq!(dump(&src), dump(&back));
    }

    /// DDL print ∘ parse is the identity on the schemas reachable by the
    /// study's transformation classes.
    #[test]
    fn ddl_round_trips_under_all_transforms(tclass in any_transform_class()) {
        let target = tclass
            .restructuring()
            .apply_schema(&named::company_schema())
            .unwrap();
        let printed = print_network_schema(&target);
        let parsed = parse_network_schema(&printed).unwrap();
        prop_assert_eq!(&target.sets, &parsed.sets);
        prop_assert_eq!(&target.constraints, &parsed.constraints);
        for r in &target.records {
            let pr = parsed.record(&r.name).expect("record survives");
            prop_assert_eq!(r.field_names(), pr.field_names());
        }
    }
}

/// The emulation baseline satisfies the same equivalence property as the
/// rewriter, on the transforms it supports (deterministic sweep — the
/// emulator is the slow path, so the matrix is kept small).
#[test]
fn emulation_matches_source_for_supported_classes() {
    use dbpc::emulate::Emulator;
    use dbpc::engine::host_exec::run_host;
    let schema = named::company_schema();
    for tclass in [
        TransformClass::Promote,
        TransformClass::RenameAgeField,
        TransformClass::RenameEmpRecord,
        TransformClass::ChangeEmpKeys,
    ] {
        let restructuring = tclass.restructuring();
        for pclass in [
            ProgramClass::PlainReport,
            ProgramClass::SortedReport,
            ProgramClass::AggregateOnly,
            ProgramClass::DeptFiltered,
            ProgramClass::DeptPrinted,
            ProgramClass::VirtualRef,
            ProgramClass::StoreEmp,
            ProgramClass::ModifyAge,
            ProgramClass::ModifyDept,
        ] {
            for seed in [11u64, 77] {
                let program = generate_program(pclass, seed);
                let mut src_db = named::company_db(4, 3, 6);
                let tgt_db = restructuring.translate(&src_db).unwrap();
                let expected = run_host(&mut src_db, &program, Inputs::new()).unwrap();
                let mut emu = Emulator::over(tgt_db, &schema, &restructuring).unwrap();
                let got = run_host(&mut emu, &program, Inputs::new()).unwrap();
                assert_eq!(
                    expected, got,
                    "emulation diverged: {pclass} under {tclass} (seed {seed})"
                );
            }
        }
    }
}

/// The bridge baseline, both write-back strategies, same property.
#[test]
fn bridge_matches_source_for_supported_classes() {
    use dbpc::emulate::{run_bridged, WriteBack};
    use dbpc::engine::host_exec::run_host;
    let schema = named::company_schema();
    for tclass in [TransformClass::Promote, TransformClass::RenameAgeField] {
        let restructuring = tclass.restructuring();
        for pclass in [
            ProgramClass::PlainReport,
            ProgramClass::AggregateOnly,
            ProgramClass::StoreEmp,
            ProgramClass::ModifyAge,
            ProgramClass::ModifyDept,
            ProgramClass::DeleteEmp,
        ] {
            for wb in [WriteBack::FullRetranslate, WriteBack::Differential] {
                let program = generate_program(pclass, 5);
                let mut src_db = named::company_db(4, 3, 6);
                let tgt_db = restructuring.translate(&src_db).unwrap();
                let expected = run_host(&mut src_db, &program, Inputs::new()).unwrap();
                let run = run_bridged(tgt_db, &schema, &restructuring, &program, Inputs::new(), wb)
                    .unwrap();
                assert_eq!(
                    expected, run.trace,
                    "bridge diverged: {pclass} under {tclass} ({wb:?})"
                );
            }
        }
    }
}

/// Interactive mode strictly dominates fully automatic mode: with a
/// permissive analyst, nothing is rejected outright — every program either
/// converts or lands in needs-manual (the §2.1.1 "completed by hand" tail).
#[test]
fn interactive_mode_dominates_automatic_mode() {
    use dbpc::corpus::harness::{success_rate_study, success_rate_study_interactive};
    let auto = success_rate_study(2, 11);
    let inter = success_rate_study_interactive(2, 11);
    let sum = |s: &dbpc::corpus::harness::StudyResult,
               f: fn(&dbpc::corpus::harness::Cell) -> usize|
     -> usize { s.rows.iter().map(|r| f(&r.aggregate())).sum() };
    let auto_ok = sum(&auto, |c| c.converted + c.converted_with_warnings);
    let inter_ok = sum(&inter, |c| c.converted + c.converted_with_warnings);
    assert!(inter_ok >= auto_ok);
    // Under the permissive analyst, outright rejections disappear into
    // needs-manual.
    assert_eq!(sum(&inter, |c| c.rejected), 0, "\n{inter}");
    assert!(sum(&inter, |c| c.needs_manual) > 0);
    // And neither mode ever mis-converts.
    assert_eq!(auto.total_verified_wrong(), 0);
    assert_eq!(inter.total_verified_wrong(), 0);
}
