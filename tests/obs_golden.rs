//! Golden snapshots of the human-readable `RunReport` tree.
//!
//! Two pinned renderings: a clean single-program conversion (the paper's
//! Figure 4.4 rewrite) and a fallback-ladder descent under an injected
//! optimizer fault. The snapshots are of the *deterministic projection*
//! (wall clocks stripped, racy/time/host metrics dropped), so they are
//! stable across machines, thread counts, and process-warm caches.
//!
//! On mismatch the test prints a line diff. To regenerate after an
//! intentional format or instrumentation change:
//!
//! ```text
//! DBPC_UPDATE_GOLDEN=1 cargo test --test obs_golden
//! ```

use dbpc::convert::report::AutoAnalyst;
use dbpc::convert::{run_ladder, FaultKind, FaultPlan, LadderConfig, Supervisor};
use dbpc::corpus::named;
use dbpc::datamodel::error::Stage;
use dbpc::dml::host::parse_program;
use dbpc::engine::Inputs;
use dbpc::obs::{MetricsRegistry, RunReport};
use std::path::PathBuf;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

/// Compare `actual` against the named golden file, printing a line diff on
/// mismatch; regenerate with `DBPC_UPDATE_GOLDEN=1`.
fn assert_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var("DBPC_UPDATE_GOLDEN").as_deref() == Ok("1") {
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {name} ({e}); run with DBPC_UPDATE_GOLDEN=1"));
    if expected == actual {
        return;
    }
    let mut diff = String::new();
    for (i, (e, a)) in expected.lines().zip(actual.lines()).enumerate() {
        if e != a {
            diff.push_str(&format!("line {:>3}: - {e}\n         + {a}\n", i + 1));
        }
    }
    let (el, al) = (expected.lines().count(), actual.lines().count());
    if el != al {
        diff.push_str(&format!("line count: expected {el}, actual {al}\n"));
    }
    panic!(
        "golden mismatch for {name}:\n{diff}\n\
         (regenerate with DBPC_UPDATE_GOLDEN=1 if the change is intentional)"
    );
}

/// A program unique to this test binary, so the process-wide analysis memo
/// sees it exactly once and the deterministic counter slice is stable.
fn fig_4_4_program() -> dbpc::dml::host::Program {
    parse_program(
        "PROGRAM GOLDEN;
  FIND E := FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-EMP, EMP(AGE > 31));
  PRINT COUNT(E);
END PROGRAM;",
    )
    .unwrap()
}

#[test]
fn clean_conversion_report_renders_stably() {
    let report = Supervisor::new()
        .convert_traced(
            &named::company_schema(),
            &named::fig_4_4_restructuring(),
            &fig_4_4_program(),
            &mut AutoAnalyst,
        )
        .unwrap();
    let run = report
        .run_report
        .expect("traced conversion attaches a report");
    assert_golden("run_report_clean.txt", &run.deterministic().to_string());
}

/// A run against the **out-of-core** engine: the paged twin of the
/// company database under a 4-frame pool (far smaller than its heap),
/// so the program's scans cross evictions. The deterministic projection
/// pins the `heap.*` physical gauges (pages, records, fill factor —
/// pure functions of the fixed corpus and page size); the racy buffer
/// traffic (`buffer.evictions` et al.) must ride in the full report but
/// stay out of the projection, since its exact counts depend on pool
/// warmth.
#[test]
fn paged_engine_report_renders_stably() {
    let before = dbpc::obs::local_snapshot();
    let (trace, capture) = dbpc::obs::capture("paged-run", || {
        let mut db = named::company_db(4, 3, 8).to_paged(256, 4).unwrap();
        let t =
            dbpc::engine::host_exec::run_host(&mut db, &fig_4_4_program(), Inputs::new()).unwrap();
        db.publish_heap_gauges();
        t
    });
    assert!(!trace.is_empty(), "the probe program prints a count");
    let mut registry = MetricsRegistry::new();
    registry.absorb(&dbpc::obs::local_snapshot().since(&before));
    let run = RunReport::assemble("paged-run", vec![capture], registry);
    let full = run.to_string();
    assert!(
        full.contains("buffer.evictions"),
        "4-frame pool over a multi-page heap must evict; full report:\n{full}"
    );
    assert_golden("run_report_paged.txt", &run.deterministic().to_string());
}

#[test]
fn optimizer_fault_ladder_report_renders_stably() {
    const KEY: u64 = 31;
    let supervisor = Supervisor {
        fault: FaultPlan::none().with_fault(Stage::Optimizer, KEY, FaultKind::Error),
        ..Supervisor::default()
    };
    let before = dbpc::obs::local_snapshot();
    let (outcome, capture) = dbpc::obs::capture("ladder", || {
        let mut db = named::company_db(4, 3, 8);
        run_ladder(
            &supervisor,
            &LadderConfig::default(),
            &named::company_schema(),
            &named::fig_4_4_restructuring(),
            &fig_4_4_program(),
            KEY,
            &mut db,
            &Inputs::new(),
            &mut AutoAnalyst,
        )
    });
    // The descent fell past the optimizer: the fallback log is non-empty,
    // and the golden tree below shows the failed rung and the serving one.
    assert!(!outcome.report.fallbacks.is_empty());
    let mut registry = MetricsRegistry::new();
    registry.absorb(&dbpc::obs::local_snapshot().since(&before));
    let run = RunReport::assemble("ladder", vec![capture], registry);
    assert_golden("run_report_ladder.txt", &run.deterministic().to_string());
}
